//! Spec execution: expand cells into a deduplicated four-stage job graph,
//! run it on the work-stealing pool, and collect deterministic results.
//!
//! Stage pipeline per cell (arrows are job-graph dependencies):
//!
//! ```text
//! profile(workload) ──► transform(workload, options) ──► trace(program) ──► simulate(cell)
//!        │                                                                     ▲
//!        └── (cells without a transform: base trace, recorded by the  ─────────┘
//!             profile job's single interpretation)
//! ```
//!
//! * One **profile** job per workload, shared by every cell and by the
//!   binaries' post-processing (Table 1 columns, predictor sweeps).  Under
//!   fan-out, the *same* interpreter pass also records the base program's
//!   dynamic trace when any cell simulates the untransformed code — one
//!   interpretation, two products.
//! * One **transform** job per distinct (workload, options) pair — the
//!   ablation's five presets over four workloads make twenty transforms, but
//!   e.g. Tables 3+4 share a single proposed-options transform per workload.
//! * One **trace** job per distinct transformed program ("trace once"):
//!   interpret it once, record [`SharedTrace`] chunks, and persist them as
//!   a self-checking binary blob so warm runs skip interpretation entirely.
//! * One **simulate** job per cell ("simulate many"): all cells of the same
//!   program consume the shared chunks concurrently, each through its own
//!   cursor.  `RunOptions::fanout = false` falls back to the historical
//!   interpret-per-cell path (results are byte-identical either way).
//!
//! Every stage consults the content-addressed [`DiskCache`] first; cold
//! results are verified against the workload's golden memory image before
//! being stored, so the cache only ever holds results from correctly
//! computing kernels.  Trace blobs additionally carry layout and
//! golden-result digests — a blob that fails its checksum, was recorded
//! against a different program shape, or predates a workload change decodes
//! as a miss and is re-recorded.

use crate::cache::DiskCache;
use crate::codec;
use crate::codec::ReportSummary;
use crate::key;
use crate::metrics::MetricsRegistry;
use crate::pool::JobGraph;
use crate::spec::ExperimentSpec;
use crate::trace_out::{Span, SpanRecorder};
use guardspec_interp::{tracefile, ChunkRecorder, Interp, Profile, SharedTrace};
use guardspec_predict::Scheme;
use guardspec_sim::{
    prepare_program, simulate_compiled_shared_in, simulate_compiled_shared_observed_in,
    simulate_compiled_trace_observed_in, simulate_program_compiled_streamed_observed_in,
    simulate_program_streamed_observed_in, simulate_sampled_observed_in, simulate_shared_in,
    simulate_shared_observed_in, simulate_trace_observed_in, CompiledProgram, CycleAccounting,
    MachineConfig, PreparedSim, SampleParams, SampleSummary, SimContext, SimObserver, SimStats,
};
use guardspec_workloads::Scale;
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One stage job's lifecycle notification, for live progress reporting
/// (the service layer's `POST /run?stream=1` turns these into
/// newline-delimited JSON events).  Every stage emits a start event
/// (`done = false`) when its job begins and a done event carrying the
/// stage wall time and whether the cache satisfied it.
#[derive(Clone, Debug)]
pub struct ProgressEvent {
    /// `"profile"`, `"transform"`, `"trace"`, `"simulate"` or
    /// `"collect"` (the final deterministic result-assembly stage).
    pub stage: &'static str,
    /// The workload name, or `workload/label` for simulate stages.
    pub unit: String,
    /// `false` at stage start, `true` at stage completion.
    pub done: bool,
    /// Whether the disk cache satisfied the stage (done events only).
    pub cached: bool,
    /// Stage wall time in milliseconds (done events only).
    pub ms: f64,
}

/// A shareable progress callback.  Wrapped so [`RunOptions`] can keep its
/// `Clone + Debug` derives; the callback runs on pool worker threads, so
/// it must be cheap and must not block on the caller.
#[derive(Clone)]
pub struct ProgressHook(pub Arc<dyn Fn(&ProgressEvent) + Send + Sync>);

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

fn progress_emit(
    hook: &Option<ProgressHook>,
    stage: &'static str,
    unit: &str,
    done: bool,
    cached: bool,
    ms: f64,
) {
    if let Some(h) = hook {
        (h.0)(&ProgressEvent {
            stage,
            unit: unit.to_string(),
            done,
            cached,
            ms,
        });
    }
}

/// How to execute a spec.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Cache root; `None` disables caching entirely.
    pub cache_dir: Option<PathBuf>,
    /// Stream each cell's trace from a concurrent interpreter thread
    /// (bounded memory, overlapped phases).  Only consulted with
    /// `fanout = false`; the fan-out path shares one materialized trace per
    /// program instead.  Results are identical either way.
    pub stream: bool,
    /// Trace once, simulate many: interpret each distinct program in a
    /// dedicated trace stage and fan the shared chunks out to every
    /// dependent sim cell.  `false` restores the historical
    /// one-interpretation-per-cell pipeline.
    pub fanout: bool,
    /// Persist fan-out traces as binary blobs in the cache so warm runs
    /// skip interpretation entirely.  Only meaningful with `fanout` and an
    /// enabled cache.
    pub trace_cache: bool,
    /// Total on-disk budget for trace blobs; oldest blobs beyond it are
    /// evicted after each run ([`DiskCache::gc_blobs`]).
    pub trace_blob_cap: u64,
    /// Run every simulation under the cycle-accounting observer and attach
    /// [`CycleAccounting`] to each cell.  Off by default: the no-op
    /// observer compiles to the exact uninstrumented hot loop and all
    /// artifacts stay byte-identical to an unobserved run's stable payload.
    pub observe: bool,
    /// Record per-stage [`Span`]s for the Chrome trace export
    /// (`--trace-out`).
    pub trace_spans: bool,
    /// Simulate through the compiled block-descriptor engine (the default).
    /// `false` restores the per-entry interpreted dispatch loop.  Exact-mode
    /// results are **byte-identical** either way, so this knob is
    /// deliberately *not* part of any cache key — both engines read and
    /// write the same entries.
    pub compile: bool,
    /// SMARTS-style interval sampling parameters; `None` (the default) runs
    /// every cell exactly.  Sampling forces the compiled engine and the
    /// fan-out pipeline, and switches the sim cache entries to a
    /// `{stats, sampling}` payload under sampling-aware keys.
    pub sample: Option<SampleParams>,
    /// Stage start/done notifications ([`ProgressEvent`]) delivered from
    /// pool worker threads as the run advances; `None` emits nothing.
    /// Deliberately **not** part of any cache key — progress reporting
    /// must never perturb the science.
    pub progress: Option<ProgressHook>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            jobs: 0,
            cache_dir: Some(PathBuf::from("results/cache")),
            stream: true,
            fanout: true,
            trace_cache: true,
            trace_blob_cap: 256 * 1024 * 1024,
            observe: false,
            trace_spans: false,
            compile: true,
            sample: None,
            progress: None,
        }
    }
}

thread_local! {
    /// Per-worker reusable simulator state: caches, BHT, BTB and window
    /// allocations survive across the cells a worker executes.
    static SIM_CTX: RefCell<SimContext> = RefCell::new(SimContext::default());
}

impl RunOptions {
    pub fn effective_jobs(&self) -> usize {
        if self.jobs != 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Wall time and cache status of one executed stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTiming {
    pub ms: f64,
    pub cached: bool,
}

/// Per-workload outputs (always produced, even with no cells).
pub struct WorkloadResult {
    pub name: String,
    pub profile: Arc<Profile>,
    pub timing: StageTiming,
}

/// One evaluated cell, in spec order.
pub struct CellResult {
    pub workload: String,
    pub label: String,
    pub scheme: Scheme,
    pub stats: SimStats,
    pub report: Option<ReportSummary>,
    pub transform_timing: Option<StageTiming>,
    /// Timing of the shared trace stage this cell consumed (fan-out runs
    /// only; cells of one program report the same stage once each).
    pub trace_timing: Option<StageTiming>,
    pub sim_timing: StageTiming,
    /// Cycle buckets + per-branch-site counters ([`RunOptions::observe`]
    /// runs only).  Always satisfies `CycleAccounting::check` against
    /// `stats`.
    pub accounting: Option<CycleAccounting>,
    /// Sampled-run estimate ([`RunOptions::sample`] runs only).
    pub sampling: Option<SampleSummary>,
}

/// Everything a binary needs to print its table and emit its artifact.
pub struct ExperimentResult {
    pub name: String,
    pub scale: Scale,
    pub jobs: usize,
    pub wall_ms: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Functional interpreter passes this run actually executed.  A cold
    /// fan-out run performs exactly one per distinct program; a warm
    /// trace-cached run performs zero.
    pub interpretations: u64,
    pub workloads: Vec<WorkloadResult>,
    pub cells: Vec<CellResult>,
    /// Stage spans for the Chrome trace export (empty unless
    /// [`RunOptions::trace_spans`]).
    pub spans: Vec<Span>,
    /// Named run counters (sorted), e.g. warm-transform decode statistics.
    pub metrics: Vec<(String, u64)>,
}

impl ExperimentResult {
    /// The profile for a workload by name (panics on unknown names — specs
    /// and consumers are compiled together).
    pub fn profile(&self, workload: &str) -> &Profile {
        &self
            .workloads
            .iter()
            .find(|w| w.name == workload)
            .unwrap_or_else(|| panic!("no workload {workload} in experiment"))
            .profile
    }

    /// Cells in spec order (convenience for per-workload iteration).
    pub fn cells_for<'a>(&'a self, workload: &'a str) -> impl Iterator<Item = &'a CellResult> + 'a {
        self.cells.iter().filter(move |c| c.workload == workload)
    }
}

/// A program's shared trace plus the static tables every simulation of it
/// needs — produced once, consumed by all dependent cells concurrently.
struct TraceData {
    prep: PreparedSim,
    trace: SharedTrace,
    /// Decoded-uop block descriptors ([`RunOptions::compile`] runs only) —
    /// built once per distinct program, shared by every dependent cell.
    comp: Option<Arc<CompiledProgram>>,
}

struct TraceSlot {
    timing: StageTiming,
    data: Arc<TraceData>,
}

struct ProfileSlot {
    timing: StageTiming,
    profile: Arc<Profile>,
    /// Base-program trace, recorded by the same interpretation, when some
    /// cell simulates the untransformed program under fan-out.
    trace: Option<TraceSlot>,
}

struct TransformSlot {
    timing: StageTiming,
    program: Arc<guardspec_ir::Program>,
    text: Arc<String>,
    report: ReportSummary,
}

struct SimSlot {
    timing: StageTiming,
    trace_timing: Option<StageTiming>,
    stats: SimStats,
    accounting: Option<CycleAccounting>,
    sampling: Option<SampleSummary>,
}

/// Execute a spec.  Panics (after cancelling outstanding jobs) if any
/// kernel miscomputes its golden results — the harness never reports
/// numbers from a wrong answer.
pub fn run_experiment(spec: &ExperimentSpec, opts: &RunOptions) -> ExperimentResult {
    let cache = Arc::new(match &opts.cache_dir {
        Some(dir) => DiskCache::new(dir),
        None => DiskCache::disabled(),
    });
    run_experiment_shared(spec, opts, cache)
}

/// [`run_experiment`] against a caller-owned cache handle.  This is the
/// server's per-request entry point: one long-lived [`DiskCache`] is shared
/// by every request so its hit/miss/race counters accumulate across the
/// daemon's lifetime, while the returned [`ExperimentResult`] reports only
/// *this run's* deltas (so artifacts stay identical to a fresh-cache run of
/// the same spec).  `opts.cache_dir` is ignored — the handle wins.
pub fn run_experiment_shared(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    cache: Arc<DiskCache>,
) -> ExperimentResult {
    let start = Instant::now();
    let hits0 = cache.hits();
    let misses0 = cache.misses();
    let race0 = cache.race_lost();
    let scale = spec.scale;
    let jobs_n = opts.effective_jobs();
    let use_trace_cache = opts.trace_cache && cache.is_enabled();
    let observe = opts.observe;
    // Sampling needs the compiled engine (functional warming walks the uop
    // descriptors) and a materialized shared trace, so it forces both.
    let sample = opts.sample.as_ref().map(|p| p.normalized());
    let compile = opts.compile || sample.is_some();
    let fanout = opts.fanout || sample.is_some();
    let interps = Arc::new(AtomicU64::new(0));
    let metrics = Arc::new(MetricsRegistry::new());
    let recorder = Arc::new(SpanRecorder::new(opts.trace_spans));

    // Shared, pre-sized output slots: job closures write, the collection
    // phase below reads in spec order — this is what makes results
    // independent of scheduling.
    let profile_slots: Arc<Vec<OnceLock<ProfileSlot>>> =
        Arc::new((0..spec.workloads.len()).map(|_| OnceLock::new()).collect());
    let sim_slots: Arc<Vec<OnceLock<SimSlot>>> =
        Arc::new((0..spec.cells.len()).map(|_| OnceLock::new()).collect());

    // Program text is the cache-key ingredient for every stage; compute it
    // once per workload up front.
    let texts: Vec<Arc<String>> = spec
        .workloads
        .iter()
        .map(|w| Arc::new(w.program.to_string()))
        .collect();

    let mut graph = JobGraph::new();

    // Stage 1: one profile job per workload.  Under fan-out, workloads with
    // untransformed cells get their base trace recorded by the same
    // interpreter pass (or loaded from the trace cache).
    let mut profile_jobs = Vec::with_capacity(spec.workloads.len());
    for (wi, w) in spec.workloads.iter().enumerate() {
        let wants_trace = fanout
            && spec
                .cells
                .iter()
                .any(|c| c.workload == wi && c.transform.is_none());
        let slots = profile_slots.clone();
        let cache = cache.clone();
        let interps = interps.clone();
        let metrics = metrics.clone();
        let recorder = recorder.clone();
        let text = texts[wi].clone();
        let program = w.program.clone();
        let expected = w.expected.clone();
        let wname = w.name;
        let progress = opts.progress.clone();
        let id = graph.add(&[], move || {
            let t0 = Instant::now();
            progress_emit(&progress, "profile", wname, false, false, 0.0);
            let pkey = key::profile_key(&text, scale);
            let tkey = key::trace_key(&text, scale);
            let exp_digest = expected_digest(&expected);
            let cached_profile = load_profile(&cache, &pkey);
            let cached_trace = (wants_trace && use_trace_cache)
                .then(|| load_trace(&cache, &tkey, &program, exp_digest, compile, &metrics))
                .flatten();
            let profile_cached = cached_profile.is_some();
            let trace_cached = cached_trace.is_some();
            let need_trace = wants_trace && !trace_cached;
            let (profile, trace_data) = if profile_cached && !need_trace {
                (cached_profile.unwrap(), cached_trace)
            } else {
                // One interpretation produces whatever is missing: the
                // profile, the base trace, or both at once through the
                // observer pair.
                interps.fetch_add(1, Ordering::Relaxed);
                let mut profiler = guardspec_interp::Profiler::new(&program);
                let mut recorder = ChunkRecorder::new(&program);
                let exec = match (profile_cached, need_trace) {
                    (false, true) => {
                        Interp::new(&program).run_with(&mut (&mut profiler, &mut recorder))
                    }
                    (false, false) => Interp::new(&program).run_with(&mut profiler),
                    (true, true) => Interp::new(&program).run_with(&mut recorder),
                    (true, false) => unreachable!("nothing to interpret"),
                }
                .unwrap_or_else(|e| panic!("{wname}: profile failed: {e}"));
                assert_golden(wname, "profiling", &expected, &exec.machine.mem);
                let profile = match cached_profile {
                    Some(p) => p,
                    None => {
                        let p = profiler.finish();
                        cache.put(&pkey, &codec::profile_to_json(&p).to_compact());
                        p
                    }
                };
                let trace_data = if need_trace {
                    let trace = recorder.finish();
                    let prep = prepare_program(&program);
                    if use_trace_cache {
                        cache.put_bytes(
                            &tkey,
                            &tracefile::encode(prep.layout(), trace.iter(), exp_digest),
                        );
                    }
                    let comp = build_compiled(&program, compile, &metrics);
                    Some(Arc::new(TraceData { prep, trace, comp }))
                } else {
                    cached_trace
                };
                (profile, trace_data)
            };
            let ms = ms_since(t0);
            progress_emit(&progress, "profile", wname, true, profile_cached, ms);
            recorder.record(
                format!("profile {wname}"),
                "profile",
                t0,
                vec![("cached".to_string(), profile_cached.to_string())],
            );
            let _ = slots[wi].set(ProfileSlot {
                timing: StageTiming {
                    ms,
                    cached: profile_cached,
                },
                profile: Arc::new(profile),
                // The merged pass makes per-product wall time inseparable;
                // both stages report the job's time with their own flags.
                trace: trace_data.map(|data| TraceSlot {
                    timing: StageTiming {
                        ms,
                        cached: trace_cached,
                    },
                    data,
                }),
            });
        });
        profile_jobs.push(id);
    }

    // Stage 2: one transform job per distinct (workload, options) — and,
    // under fan-out, one trace job per transform right behind it.
    let transform_slots: Arc<Vec<OnceLock<TransformSlot>>> = Arc::new(
        (0..spec.cells.len()).map(|_| OnceLock::new()).collect(), // upper bound
    );
    let trace_slots: Arc<Vec<OnceLock<TraceSlot>>> =
        Arc::new((0..spec.cells.len()).map(|_| OnceLock::new()).collect());
    let mut transform_jobs: HashMap<(usize, String), (usize, usize)> = HashMap::new();
    // Trace job id per transform slot index (fan-out only).
    let mut trace_jobs: Vec<usize> = Vec::new();
    // Per cell: the transform's (job id, slot index), stored together at
    // creation so stage dependencies can never desync from result slots.
    let mut cell_transform: Vec<Option<(usize, usize)>> = vec![None; spec.cells.len()];
    for (ci, cell) in spec.cells.iter().enumerate() {
        let Some(options) = &cell.transform else {
            continue;
        };
        let dedupe = (cell.workload, key::describe_options(options));
        if let Some(&known) = transform_jobs.get(&dedupe) {
            cell_transform[ci] = Some(known);
            continue;
        }
        let next_slot = transform_jobs.len();
        let wi = cell.workload;
        let tf_id = {
            let slots = transform_slots.clone();
            let profiles = profile_slots.clone();
            let cache = cache.clone();
            let metrics = metrics.clone();
            let recorder = recorder.clone();
            let text = texts[wi].clone();
            let program = spec.workloads[wi].program.clone();
            let options = options.clone();
            let wname = spec.workloads[wi].name;
            let progress = opts.progress.clone();
            graph.add(&[profile_jobs[wi]], move || {
                let t0 = Instant::now();
                progress_emit(&progress, "transform", wname, false, false, 0.0);
                let key = key::transform_key(&text, scale, &options);
                let (program, text, report, cached) = match load_transform(&cache, &key, &metrics) {
                    Some((p, t, r)) => (p, t, r, true),
                    None => {
                        let profile = &profiles[wi].get().expect("profile dependency ran").profile;
                        let mut p = program;
                        let report = guardspec_core::transform_program(&mut p, profile, &options);
                        guardspec_ir::validate::assert_valid(&p);
                        let out_text = p.to_string();
                        let summary = ReportSummary::from(&report);
                        // The binary form rides along so warm hits decode
                        // words instead of re-parsing the printed text.
                        let bin = codec::words_to_hex(&guardspec_ir::encode::encode_program(&p));
                        cache.put(
                            &key,
                            &crate::json::Json::obj(vec![
                                ("program", crate::json::Json::str(&out_text)),
                                ("bin", crate::json::Json::str(bin)),
                                ("report", codec::report_to_json(&summary)),
                            ])
                            .to_compact(),
                        );
                        (p, out_text, summary, false)
                    }
                };
                let timing = StageTiming {
                    ms: ms_since(t0),
                    cached,
                };
                progress_emit(&progress, "transform", wname, true, cached, timing.ms);
                recorder.record(
                    format!("transform {wname}"),
                    "transform",
                    t0,
                    vec![("cached".to_string(), cached.to_string())],
                );
                let _ = slots[next_slot].set(TransformSlot {
                    timing,
                    program: Arc::new(program),
                    text: Arc::new(text),
                    report,
                });
            })
        };
        transform_jobs.insert(dedupe, (tf_id, next_slot));
        cell_transform[ci] = Some((tf_id, next_slot));
        if fanout {
            // Stage 2.5: trace the transformed program exactly once.
            let slots = trace_slots.clone();
            let transforms = transform_slots.clone();
            let cache = cache.clone();
            let interps = interps.clone();
            let metrics = metrics.clone();
            let recorder = recorder.clone();
            let expected = spec.workloads[wi].expected.clone();
            let wname = spec.workloads[wi].name;
            let progress = opts.progress.clone();
            let tr_id = graph.add(&[tf_id], move || {
                let t0 = Instant::now();
                progress_emit(&progress, "trace", wname, false, false, 0.0);
                let t = transforms[next_slot]
                    .get()
                    .expect("transform dependency ran");
                let tkey = key::trace_key(&t.text, scale);
                let exp_digest = expected_digest(&expected);
                let cached_trace = use_trace_cache
                    .then(|| load_trace(&cache, &tkey, &t.program, exp_digest, compile, &metrics))
                    .flatten();
                let cached = cached_trace.is_some();
                let data = match cached_trace {
                    Some(d) => d,
                    None => {
                        interps.fetch_add(1, Ordering::Relaxed);
                        let mut recorder = ChunkRecorder::new(&t.program);
                        let exec = Interp::new(&t.program)
                            .run_with(&mut recorder)
                            .unwrap_or_else(|e| panic!("{wname}: trace failed: {e}"));
                        assert_golden(wname, "tracing", &expected, &exec.machine.mem);
                        let trace = recorder.finish();
                        let prep = prepare_program(&t.program);
                        if use_trace_cache {
                            cache.put_bytes(
                                &tkey,
                                &tracefile::encode(prep.layout(), trace.iter(), exp_digest),
                            );
                        }
                        let comp = build_compiled(&t.program, compile, &metrics);
                        Arc::new(TraceData { prep, trace, comp })
                    }
                };
                recorder.record(
                    format!("trace {wname}"),
                    "trace",
                    t0,
                    vec![("cached".to_string(), cached.to_string())],
                );
                let ms = ms_since(t0);
                progress_emit(&progress, "trace", wname, true, cached, ms);
                let _ = slots[next_slot].set(TraceSlot {
                    timing: StageTiming { ms, cached },
                    data,
                });
            });
            trace_jobs.push(tr_id);
        }
    }

    // Stage 3: one simulate job per cell.
    for (ci, cell) in spec.cells.iter().enumerate() {
        let wi = cell.workload;
        let slots = sim_slots.clone();
        let cache = cache.clone();
        let base_text = texts[wi].clone();
        let wname = spec.workloads[wi].name;
        let label = cell.label.clone();
        let scheme = cell.scheme;
        let cfg = cell.cfg.clone();
        let tslot = cell_transform[ci];
        if fanout {
            // Fan-out: consume the program's shared trace; interpretation
            // and golden verification already happened in its trace stage.
            let deps = match tslot {
                Some((_job, slot)) => vec![trace_jobs[slot]],
                None => vec![profile_jobs[wi]],
            };
            let transforms = transform_slots.clone();
            let traces = trace_slots.clone();
            let profiles = profile_slots.clone();
            let recorder = recorder.clone();
            let progress = opts.progress.clone();
            graph.add(&deps, move || {
                let t0 = Instant::now();
                let unit = format!("{wname}/{label}");
                progress_emit(&progress, "simulate", &unit, false, false, 0.0);
                let (text, data, trace_timing): (Arc<String>, Arc<TraceData>, StageTiming) =
                    match tslot {
                        Some((_job, s)) => {
                            let tf = transforms[s].get().expect("transform dependency ran");
                            let tr = traces[s].get().expect("trace dependency ran");
                            (tf.text.clone(), tr.data.clone(), tr.timing)
                        }
                        None => {
                            let p = profiles[wi].get().expect("profile dependency ran");
                            let tr = p.trace.as_ref().expect("base trace recorded");
                            (base_text, tr.data.clone(), tr.timing)
                        }
                    };
                let (stats, accounting, sampling, cached) = if let Some(p) = sample {
                    let comp = data
                        .comp
                        .as_ref()
                        .expect("sampling forces compiled descriptors");
                    if observe {
                        let okey = key::sampled_obs_sim_key(&text, scale, scheme, &cfg, &p);
                        match load_observed_sampled(&cache, &okey) {
                            Some((s, a, smp)) => (s, Some(a), Some(smp), true),
                            None => {
                                let mut acct = CycleAccounting::new();
                                let (stats, smp) = SIM_CTX
                                    .with(|ctx| {
                                        simulate_sampled_observed_in(
                                            &mut ctx.borrow_mut(),
                                            comp,
                                            &data.trace,
                                            scheme,
                                            &cfg,
                                            p,
                                            &mut acct,
                                        )
                                    })
                                    .unwrap_or_else(|e| {
                                        panic!("{wname}/{label}: simulate failed: {e}")
                                    });
                                acct.check(&stats);
                                cache.put(
                                    &okey,
                                    &observed_sampled_to_json(&stats, &acct, &smp).to_compact(),
                                );
                                let skey = key::sampled_sim_key(&text, scale, scheme, &cfg, &p);
                                cache.put(&skey, &sampled_to_json(&stats, &smp).to_compact());
                                (stats, Some(acct), Some(smp), false)
                            }
                        }
                    } else {
                        let skey = key::sampled_sim_key(&text, scale, scheme, &cfg, &p);
                        match load_sampled(&cache, &skey) {
                            Some((s, smp)) => (s, None, Some(smp), true),
                            None => {
                                let (stats, smp) = SIM_CTX
                                    .with(|ctx| {
                                        simulate_sampled_observed_in(
                                            &mut ctx.borrow_mut(),
                                            comp,
                                            &data.trace,
                                            scheme,
                                            &cfg,
                                            p,
                                            &mut (),
                                        )
                                    })
                                    .unwrap_or_else(|e| {
                                        panic!("{wname}/{label}: simulate failed: {e}")
                                    });
                                cache.put(&skey, &sampled_to_json(&stats, &smp).to_compact());
                                (stats, None, Some(smp), false)
                            }
                        }
                    }
                } else if observe {
                    let okey = key::obs_sim_key(&text, scale, scheme, &cfg);
                    match load_observed(&cache, &okey) {
                        Some((s, a)) => (s, Some(a), None, true),
                        None => {
                            let mut acct = CycleAccounting::new();
                            let stats = SIM_CTX
                                .with(|ctx| {
                                    let ctx = &mut ctx.borrow_mut();
                                    match &data.comp {
                                        Some(comp) => simulate_compiled_shared_observed_in(
                                            ctx,
                                            comp,
                                            &data.trace,
                                            scheme,
                                            &cfg,
                                            &mut acct,
                                        ),
                                        None => simulate_shared_observed_in(
                                            ctx,
                                            &data.prep,
                                            &data.trace,
                                            scheme,
                                            &cfg,
                                            &mut acct,
                                        ),
                                    }
                                })
                                .unwrap_or_else(|e| {
                                    panic!("{wname}/{label}: simulate failed: {e}")
                                });
                            acct.check(&stats);
                            cache.put(&okey, &observed_to_json(&stats, &acct).to_compact());
                            // Seed the plain entry too: an observed run
                            // leaves later unobserved runs warm.
                            let skey = key::sim_key(&text, scale, scheme, &cfg);
                            cache.put(&skey, &codec::stats_to_json(&stats).to_compact());
                            (stats, Some(acct), None, false)
                        }
                    }
                } else {
                    let key = key::sim_key(&text, scale, scheme, &cfg);
                    match load_stats(&cache, &key) {
                        Some(s) => (s, None, None, true),
                        None => {
                            let stats = SIM_CTX
                                .with(|ctx| {
                                    let ctx = &mut ctx.borrow_mut();
                                    match &data.comp {
                                        Some(comp) => simulate_compiled_shared_in(
                                            ctx,
                                            comp,
                                            &data.trace,
                                            scheme,
                                            &cfg,
                                        ),
                                        None => simulate_shared_in(
                                            ctx,
                                            &data.prep,
                                            &data.trace,
                                            scheme,
                                            &cfg,
                                        ),
                                    }
                                })
                                .unwrap_or_else(|e| {
                                    panic!("{wname}/{label}: simulate failed: {e}")
                                });
                            cache.put(&key, &codec::stats_to_json(&stats).to_compact());
                            (stats, None, None, false)
                        }
                    }
                };
                recorder.record(
                    format!("simulate {wname}/{label}"),
                    "simulate",
                    t0,
                    vec![("cached".to_string(), cached.to_string())],
                );
                let ms = ms_since(t0);
                progress_emit(&progress, "simulate", &unit, true, cached, ms);
                let _ = slots[ci].set(SimSlot {
                    timing: StageTiming { ms, cached },
                    trace_timing: Some(trace_timing),
                    stats,
                    accounting,
                    sampling,
                });
            });
        } else {
            // Historical path: each cold cell interprets its own program
            // (streamed or materialized) and verifies golden memory itself.
            let deps = match tslot {
                Some((job, _slot)) => vec![job],
                None => Vec::new(),
            };
            let transforms = transform_slots.clone();
            let interps = interps.clone();
            let metrics = metrics.clone();
            let recorder = recorder.clone();
            let base_program = spec.workloads[wi].program.clone();
            let expected = spec.workloads[wi].expected.clone();
            let stream = opts.stream;
            let progress = opts.progress.clone();
            graph.add(&deps, move || {
                let t0 = Instant::now();
                let unit = format!("{wname}/{label}");
                progress_emit(&progress, "simulate", &unit, false, false, 0.0);
                let (program, text): (Arc<guardspec_ir::Program>, Arc<String>) = match tslot {
                    Some((_job, s)) => {
                        let t = transforms[s].get().expect("transform dependency ran");
                        (t.program.clone(), t.text.clone())
                    }
                    None => (Arc::new(base_program), base_text),
                };
                let (stats, accounting, cached) = if observe {
                    let okey = key::obs_sim_key(&text, scale, scheme, &cfg);
                    match load_observed(&cache, &okey) {
                        Some((s, a)) => (s, Some(a), true),
                        None => {
                            interps.fetch_add(1, Ordering::Relaxed);
                            let comp = build_compiled(&program, compile, &metrics);
                            let mut acct = CycleAccounting::new();
                            let (stats, exec) = SIM_CTX.with(|ctx| {
                                simulate_cell_cold(
                                    &mut ctx.borrow_mut(),
                                    &program,
                                    comp.as_deref(),
                                    scheme,
                                    &cfg,
                                    stream,
                                    wname,
                                    &label,
                                    &mut acct,
                                )
                            });
                            assert_golden(wname, &label, &expected, &exec.machine.mem);
                            acct.check(&stats);
                            cache.put(&okey, &observed_to_json(&stats, &acct).to_compact());
                            let skey = key::sim_key(&text, scale, scheme, &cfg);
                            cache.put(&skey, &codec::stats_to_json(&stats).to_compact());
                            (stats, Some(acct), false)
                        }
                    }
                } else {
                    let key = key::sim_key(&text, scale, scheme, &cfg);
                    match load_stats(&cache, &key) {
                        Some(s) => (s, None, true),
                        None => {
                            interps.fetch_add(1, Ordering::Relaxed);
                            let comp = build_compiled(&program, compile, &metrics);
                            let (stats, exec) = SIM_CTX.with(|ctx| {
                                simulate_cell_cold(
                                    &mut ctx.borrow_mut(),
                                    &program,
                                    comp.as_deref(),
                                    scheme,
                                    &cfg,
                                    stream,
                                    wname,
                                    &label,
                                    &mut (),
                                )
                            });
                            assert_golden(wname, &label, &expected, &exec.machine.mem);
                            cache.put(&key, &codec::stats_to_json(&stats).to_compact());
                            (stats, None, false)
                        }
                    }
                };
                recorder.record(
                    format!("simulate {wname}/{label}"),
                    "simulate",
                    t0,
                    vec![("cached".to_string(), cached.to_string())],
                );
                let ms = ms_since(t0);
                progress_emit(&progress, "simulate", &unit, true, cached, ms);
                let _ = slots[ci].set(SimSlot {
                    timing: StageTiming { ms, cached },
                    trace_timing: None,
                    stats,
                    accounting,
                    sampling: None,
                });
            });
        }
    }

    graph.execute(jobs_n);

    // Keep the blob footprint bounded; JSON stage entries are never evicted.
    if use_trace_cache {
        cache.gc_blobs(opts.trace_blob_cap);
    }

    // Deterministic collection in spec order — the fifth pipeline stage
    // (after profile/transform/trace/simulate): assemble slot outputs into
    // the result in a fixed order, independent of execution schedule.
    let t_collect = Instant::now();
    progress_emit(&opts.progress, "collect", &spec.name, false, false, 0.0);
    let workloads = spec
        .workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let slot = profile_slots[wi].get().expect("profile job ran");
            WorkloadResult {
                name: w.name.to_string(),
                profile: slot.profile.clone(),
                timing: slot.timing,
            }
        })
        .collect();
    let cells = spec
        .cells
        .iter()
        .enumerate()
        .map(|(ci, cell)| {
            let sim = sim_slots[ci].get().expect("sim job ran");
            let transform = cell_transform[ci]
                .map(|(_job, s)| transform_slots[s].get().expect("transform job ran"));
            CellResult {
                workload: spec.workloads[cell.workload].name.to_string(),
                label: cell.label.clone(),
                scheme: cell.scheme,
                stats: sim.stats.clone(),
                report: transform.map(|t| t.report.clone()),
                transform_timing: transform.map(|t| t.timing),
                trace_timing: sim.trace_timing,
                sim_timing: sim.timing,
                accounting: sim.accounting.clone(),
                sampling: sim.sampling.clone(),
            }
        })
        .collect();

    // Same-key writes that lost to a concurrent writer (two racing worker
    // threads, or a server request that slipped past in-flight dedup) show
    // up as a named counter so duplicated work is observable.
    let race_delta = cache.race_lost() - race0;
    if race_delta > 0 {
        metrics.add("cache.race_lost", race_delta);
    }

    recorder.record(
        format!("collect {}", spec.name),
        "collect",
        t_collect,
        Vec::new(),
    );
    progress_emit(
        &opts.progress,
        "collect",
        &spec.name,
        true,
        false,
        ms_since(t_collect),
    );

    ExperimentResult {
        name: spec.name.clone(),
        scale,
        jobs: jobs_n,
        wall_ms: ms_since(start),
        cache_hits: cache.hits() - hits0,
        cache_misses: cache.misses() - misses0,
        interpretations: interps.load(Ordering::Relaxed),
        workloads,
        cells,
        spans: recorder.finish(),
        metrics: metrics.snapshot(),
    }
}

/// The uncached no-fanout simulation: interpret (streamed or materialized)
/// and simulate under `obs`.  `&mut ()` is the uninstrumented fast path —
/// the disabled observer folds every hook to dead code.  `comp` selects the
/// compiled block-descriptor engine; `None` runs the historical
/// interpreted dispatch loop (results byte-identical either way).
#[allow(clippy::too_many_arguments)]
fn simulate_cell_cold<O: SimObserver>(
    ctx: &mut SimContext,
    program: &guardspec_ir::Program,
    comp: Option<&CompiledProgram>,
    scheme: Scheme,
    cfg: &MachineConfig,
    stream: bool,
    wname: &str,
    label: &str,
    obs: &mut O,
) -> (SimStats, guardspec_interp::ExecResult) {
    if stream {
        match comp {
            Some(c) => {
                simulate_program_compiled_streamed_observed_in(ctx, program, c, scheme, cfg, obs)
            }
            None => simulate_program_streamed_observed_in(ctx, program, scheme, cfg, obs),
        }
        .unwrap_or_else(|e| panic!("{wname}/{label}: simulate failed: {e}"))
    } else {
        let (layout, trace, exec) = guardspec_interp::trace::trace_program(program)
            .unwrap_or_else(|e| panic!("{wname}/{label}: trace failed: {e}"));
        let stats = match comp {
            Some(c) => simulate_compiled_trace_observed_in(ctx, c, &trace, scheme, cfg, obs),
            None => simulate_trace_observed_in(ctx, program, &layout, &trace, scheme, cfg, obs),
        }
        .unwrap_or_else(|e| panic!("{wname}/{label}: simulate failed: {e}"));
        (stats, exec)
    }
}

/// Build the decoded-uop descriptors for a compiled run, recording the
/// build time as the `sim.block_build_us` run metric: warm trace-cache
/// hits skip interpretation entirely but still pay this (small) decode
/// cost, so it is accounted separately from the sim stage proper.
fn build_compiled(
    program: &guardspec_ir::Program,
    compile: bool,
    metrics: &MetricsRegistry,
) -> Option<Arc<CompiledProgram>> {
    if !compile {
        return None;
    }
    let t0 = Instant::now();
    let comp = Arc::new(CompiledProgram::build(program));
    metrics.add("sim.block_build_us", t0.elapsed().as_micros() as u64);
    Some(comp)
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Panic unless `mem` carries the workload's expected golden values.
fn assert_golden(wname: &str, stage: &str, expected: &[(u64, i64)], mem: &[i64]) {
    let bad: Vec<_> = expected
        .iter()
        .filter(|&&(addr, want)| mem.get(addr as usize).copied() != Some(want))
        .collect();
    assert!(bad.is_empty(), "{wname} miscomputed under {stage}: {bad:?}");
}

/// FNV-1a digest of the golden `(address, value)` pairs — stored in trace
/// blobs so a blob recorded before a workload's expected results changed
/// can never replay silently.
fn expected_digest(expected: &[(u64, i64)]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut s = 0xcbf2_9ce4_8422_2325u64;
    for &(addr, want) in expected {
        for b in addr
            .to_le_bytes()
            .into_iter()
            .chain((want as u64).to_le_bytes())
        {
            s ^= b as u64;
            s = s.wrapping_mul(PRIME);
        }
    }
    s
}

/// A cache entry failed to decode: drop it (the stage recomputes) and say
/// so as a structured warning.
fn warn_bad_cache(key: &str, e: &str) {
    crate::log::warn(
        "cache.discard",
        &[
            ("key", crate::json::Json::str(key)),
            ("error", crate::json::Json::str(e)),
        ],
    );
}

fn load_profile(cache: &DiskCache, key: &str) -> Option<Profile> {
    let text = cache.get(key)?;
    match crate::json::parse(&text).and_then(|j| codec::profile_from_json(&j)) {
        Ok(p) => Some(p),
        Err(e) => {
            warn_bad_cache(key, &e);
            None
        }
    }
}

/// Load and validate a cached trace blob for `program`.  Any decode error,
/// layout mismatch or golden-digest mismatch is a miss — the caller
/// re-interprets and overwrites.
fn load_trace(
    cache: &DiskCache,
    key: &str,
    program: &guardspec_ir::Program,
    want_digest: u64,
    compile: bool,
    metrics: &MetricsRegistry,
) -> Option<Arc<TraceData>> {
    let bytes = cache.get_bytes(key)?;
    let prep = prepare_program(program);
    let check = || -> Result<SharedTrace, String> {
        let d = tracefile::decode(&bytes).map_err(|e| e.to_string())?;
        if d.layout_digest != tracefile::layout_digest(prep.layout()) {
            return Err("layout digest mismatch".into());
        }
        if d.exec_digest != want_digest {
            return Err("golden-result digest mismatch".into());
        }
        Ok(d.trace)
    };
    match check() {
        Ok(trace) => {
            let comp = build_compiled(program, compile, metrics);
            Some(Arc::new(TraceData { prep, trace, comp }))
        }
        Err(e) => {
            warn_bad_cache(key, &e);
            None
        }
    }
}

fn load_transform(
    cache: &DiskCache,
    key: &str,
    metrics: &MetricsRegistry,
) -> Option<(guardspec_ir::Program, String, ReportSummary)> {
    let text = cache.get(key)?;
    let decode = || -> Result<_, String> {
        let j = crate::json::parse(&text)?;
        let src = j
            .get("program")
            .and_then(crate::json::Json::as_str)
            .ok_or("no program")?;
        let report = codec::report_from_json(j.get("report").ok_or("no report")?)?;
        // Warm hits decode the embedded binary form; re-parsing the printed
        // text is the fallback for entries without one (or a corrupt hex).
        let bin_program = j
            .get("bin")
            .and_then(crate::json::Json::as_str)
            .and_then(|hex| codec::words_from_hex(hex).ok())
            .and_then(|words| guardspec_ir::encode::decode_program(&words).ok());
        let program = match bin_program {
            Some(p) => {
                metrics.incr("transform.bin_decoded");
                p
            }
            None => {
                metrics.incr("transform.reparsed");
                guardspec_ir::parse::parse_program(src, None).map_err(|e| e.to_string())?
            }
        };
        Ok((program, src.to_string(), report))
    };
    match decode() {
        Ok(v) => Some(v),
        Err(e) => {
            warn_bad_cache(key, &e);
            None
        }
    }
}

fn observed_to_json(stats: &SimStats, acct: &CycleAccounting) -> crate::json::Json {
    crate::json::Json::obj(vec![
        ("stats", codec::stats_to_json(stats)),
        ("accounting", codec::accounting_to_json(acct)),
    ])
}

fn sampled_to_json(stats: &SimStats, smp: &SampleSummary) -> crate::json::Json {
    crate::json::Json::obj(vec![
        ("stats", codec::stats_to_json(stats)),
        ("sampling", codec::sample_to_json(smp)),
    ])
}

fn observed_sampled_to_json(
    stats: &SimStats,
    acct: &CycleAccounting,
    smp: &SampleSummary,
) -> crate::json::Json {
    crate::json::Json::obj(vec![
        ("stats", codec::stats_to_json(stats)),
        ("accounting", codec::accounting_to_json(acct)),
        ("sampling", codec::sample_to_json(smp)),
    ])
}

/// Load a cached sampled-simulation entry ({stats, sampling}).
fn load_sampled(cache: &DiskCache, key: &str) -> Option<(SimStats, SampleSummary)> {
    let text = cache.get(key)?;
    let decode = || -> Result<_, String> {
        let j = crate::json::parse(&text)?;
        let stats = codec::stats_from_json(j.get("stats").ok_or("no stats")?)?;
        let smp = codec::sample_from_json(j.get("sampling").ok_or("no sampling")?)?;
        Ok((stats, smp))
    };
    match decode() {
        Ok(v) => Some(v),
        Err(e) => {
            warn_bad_cache(key, &e);
            None
        }
    }
}

/// Load a cached sampled+observed entry; the bucket-sum invariant is
/// re-checked against the aggregate window stats on load.
fn load_observed_sampled(
    cache: &DiskCache,
    key: &str,
) -> Option<(SimStats, CycleAccounting, SampleSummary)> {
    let text = cache.get(key)?;
    let decode = || -> Result<_, String> {
        let j = crate::json::parse(&text)?;
        let stats = codec::stats_from_json(j.get("stats").ok_or("no stats")?)?;
        let acct = codec::accounting_from_json(j.get("accounting").ok_or("no accounting")?)?;
        if acct.bucket_sum() != stats.cycles {
            return Err(format!(
                "bucket sum {} != cycles {}",
                acct.bucket_sum(),
                stats.cycles
            ));
        }
        let smp = codec::sample_from_json(j.get("sampling").ok_or("no sampling")?)?;
        Ok((stats, acct, smp))
    };
    match decode() {
        Ok(v) => Some(v),
        Err(e) => {
            warn_bad_cache(key, &e);
            None
        }
    }
}

/// Load a cached observed-simulation entry (stats + cycle accounting).
/// The bucket-sum invariant is re-checked on load so a corrupt entry is a
/// miss, never a wrong attribution table.
fn load_observed(cache: &DiskCache, key: &str) -> Option<(SimStats, CycleAccounting)> {
    let text = cache.get(key)?;
    let decode = || -> Result<_, String> {
        let j = crate::json::parse(&text)?;
        let stats = codec::stats_from_json(j.get("stats").ok_or("no stats")?)?;
        let acct = codec::accounting_from_json(j.get("accounting").ok_or("no accounting")?)?;
        if acct.bucket_sum() != stats.cycles {
            return Err(format!(
                "bucket sum {} != cycles {}",
                acct.bucket_sum(),
                stats.cycles
            ));
        }
        Ok((stats, acct))
    };
    match decode() {
        Ok(v) => Some(v),
        Err(e) => {
            warn_bad_cache(key, &e);
            None
        }
    }
}

fn load_stats(cache: &DiskCache, key: &str) -> Option<SimStats> {
    let text = cache.get(key)?;
    match crate::json::parse(&text).and_then(|j| codec::stats_from_json(&j)) {
        Ok(s) => Some(s),
        Err(e) => {
            warn_bad_cache(key, &e);
            None
        }
    }
}
