//! Stable content hashing for cache keys.
//!
//! `std::hash` is explicitly *not* stable across program runs
//! (`RandomState`), so the cache uses a hand-rolled 128-bit FNV-1a.  The
//! value is not cryptographic; it only needs to make accidental collisions
//! across (program text × scale × options × config) astronomically unlikely
//! and to be identical across processes so cache entries survive re-runs and
//! are shared between bench binaries.

/// 128-bit FNV-1a.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u128,
}

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

impl StableHasher {
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Length-prefixed, so `("ab", "c")` and `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Bit-exact float hashing (distinguishes `-0.0` from `0.0`, every NaN
    /// payload from every other — fine for configuration fingerprints).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_bytes(&[v as u8])
    }

    /// 32 lowercase hex characters.
    pub fn finish_hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

/// Convenience: hash one string to a hex digest.
pub fn hex_digest(s: &str) -> String {
    let mut h = StableHasher::new();
    h.write_str(s);
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_known_values() {
        // Guard against accidental algorithm changes: these digests are part
        // of the on-disk cache format.
        assert_eq!(hex_digest(""), hex_digest(""));
        assert_ne!(hex_digest("a"), hex_digest("b"));
        let d = hex_digest("guardspec");
        assert_eq!(d.len(), 32);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab").write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish_hex(), b.finish_hex());
    }

    #[test]
    fn floats_hash_bit_exact() {
        let mut a = StableHasher::new();
        a.write_f64(0.0);
        let mut b = StableHasher::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish_hex(), b.finish_hex());
    }
}
