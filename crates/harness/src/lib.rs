//! # guardspec-harness
//!
//! Experiment orchestration for the bench binaries: describe *what* to
//! measure as an [`ExperimentSpec`] (workload × transform × scheme ×
//! machine cells), and [`run_experiment`] takes care of *how* —
//!
//! * expanding cells into a profile → transform → simulate job graph with
//!   shared stages de-duplicated (one profile per workload, one transform
//!   per distinct option set),
//! * executing the graph on a hand-rolled work-stealing [`pool`]
//!   (`--jobs N`; results are byte-identical at any thread count),
//! * memoising every stage in a content-addressed on-disk [`cache`] under
//!   `results/cache/`, keyed by a stable 128-bit hash of the program text,
//!   scale and full option/config state ([`key`]),
//! * emitting machine-readable run [`artifact`]s (`results/BENCH_<n>.json`
//!   and `--json <path>`) with per-stage timings and cache counters via a
//!   dependency-free [`json`] writer.
//!
//! The binaries in `guardspec-bench` are thin views over this crate: they
//! build a spec, run it, and format the paper's tables from the result.

pub mod args;
pub mod artifact;
pub mod cache;
pub mod codec;
pub mod hash;
pub mod json;
pub mod key;
pub mod log;
pub mod metrics;
pub mod pool;
pub mod prom;
pub mod runner;
pub mod spec;
pub mod trace_out;

pub use args::{parse_jobs, parse_scale, HarnessArgs};
pub use artifact::{emit_bench_artifact, full_json, stable_json, write_json_file};
pub use cache::DiskCache;
pub use codec::{DecisionSummary, ReportSummary};
pub use json::Json;
pub use log::{parse_log_level, LogLevel};
pub use metrics::{Histogram, MetricsRegistry, HIST_BOUNDS, HIST_MAX_RATIO};
pub use pool::JobGraph;
pub use prom::{parse_prometheus, prometheus_text, registry_prometheus_text};
pub use runner::{
    run_experiment, run_experiment_shared, CellResult, ExperimentResult, ProgressEvent,
    ProgressHook, RunOptions, WorkloadResult,
};
pub use spec::{CellSpec, ExperimentSpec};
pub use trace_out::{
    chrome_trace_json, chrome_trace_json_grouped, validate_chrome_trace, Span, SpanRecorder,
};

/// The conventional cache root used by the bench binaries.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";
/// The conventional artifact directory used by the bench binaries.
pub const DEFAULT_RESULTS_DIR: &str = "results";
