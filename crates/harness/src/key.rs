//! Cache-key construction: canonical fingerprints of everything that can
//! change a stage's output.
//!
//! A stage result is addressed by a stable hash of:
//!
//! * the **program text** (the printed IR — workload inputs are embedded in
//!   the program's data section, so text fully determines execution),
//! * the **scale** tag,
//! * for transforms, every field of [`DriverOptions`] (including every
//!   [`FeedbackParams`] threshold),
//! * for simulations, the [`Scheme`] and every field of [`MachineConfig`]
//!   (including all latencies, queue sizes and unit counts).
//!
//! The canonical descriptions below enumerate struct fields *by hand* — if a
//! field is added upstream it must be added here too, or two configurations
//! differing only in that field would alias.  The property tests in
//! `tests/cache_key_prop.rs` perturb every current field and assert the key
//! changes.

use crate::hash::StableHasher;
use guardspec_core::DriverOptions;
use guardspec_predict::Scheme;
use guardspec_sim::{MachineConfig, SampleParams};
use guardspec_workloads::Scale;

/// Stable textual tag for a scale (also the `--scale` argument spelling).
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Canonical `name=value` listing of every `DriverOptions` field.  Floats
/// are rendered as bit patterns so distinct values never collide through
/// decimal formatting.
pub fn describe_options(o: &DriverOptions) -> String {
    let f = &o.feedback;
    format!(
        "likely_threshold={:016x};convert_threshold={:016x};monotonic_toggle_max={:016x};\
         seg_window={};seg_bias={:016x};max_segments={};min_segment_frac={:016x};\
         max_period={};period_agreement={:016x};\
         enable_likely={};enable_ifconvert={};enable_split={};enable_speculation={};\
         max_arm_len={};max_speculate_ops={};allow_speculative_loads={};\
         max_likelies_per_site={};mispredict_penalty={:016x}",
        f.likely_threshold.to_bits(),
        f.convert_threshold.to_bits(),
        f.monotonic_toggle_max.to_bits(),
        f.seg_window,
        f.seg_bias.to_bits(),
        f.max_segments,
        f.min_segment_frac.to_bits(),
        f.max_period,
        f.period_agreement.to_bits(),
        o.enable_likely,
        o.enable_ifconvert,
        o.enable_split,
        o.enable_speculation,
        o.max_arm_len,
        o.max_speculate_ops,
        o.allow_speculative_loads,
        o.max_likelies_per_site,
        o.mispredict_penalty.to_bits(),
    )
}

/// Canonical `name=value` listing of every `MachineConfig` field.
pub fn describe_config(c: &MachineConfig) -> String {
    let l = &c.latencies;
    format!(
        "fetch_width={};commit_width={};rob_size={};queue_size={:?};fu_count={:?};\
         max_inflight_branches={};mispredict_recovery={};frontend_depth={};\
         alu={};ldst={};sft={};fp_add={};fp_mul={};fp_div={};cache_miss_penalty={};\
         bht_entries={};btb_sets={};icache={:?};dcache={:?}",
        c.fetch_width,
        c.commit_width,
        c.rob_size,
        c.queue_size,
        c.fu_count,
        c.max_inflight_branches,
        c.mispredict_recovery,
        c.frontend_depth,
        l.alu,
        l.ldst,
        l.sft,
        l.fp_add,
        l.fp_mul,
        l.fp_div,
        l.cache_miss_penalty,
        c.bht_entries,
        c.btb_sets,
        c.icache,
        c.dcache,
    )
}

/// Canonical `name=value` listing of every [`SampleParams`] field.  Only
/// appended to simulation keys when sampling is on: an unsampled run's key
/// is unchanged, and the **engine choice is deliberately not keyed** — the
/// compiled and interpreted pipelines are contractually byte-identical in
/// exact mode (the differential fuzz oracle enforces it), so their results
/// are interchangeable cache entries.
pub fn describe_sample(p: &SampleParams) -> String {
    format!(
        "detail={};warmup={};interval={}",
        p.detail, p.warmup, p.interval
    )
}

fn stage_key(stage: &str, program_text: &str, scale: Scale, extras: &[&str]) -> String {
    let mut h = StableHasher::new();
    h.write_str(stage);
    h.write_str(program_text);
    h.write_str(scale_tag(scale));
    for e in extras {
        h.write_str(e);
    }
    format!("{stage}-{}", h.finish_hex())
}

/// Key for a profiling run of `program_text` at `scale`.
pub fn profile_key(program_text: &str, scale: Scale) -> String {
    stage_key("profile", program_text, scale, &[])
}

/// Key for the binary dynamic-trace blob of `program_text` at `scale`.
/// The trace depends only on the program (inputs are embedded in its data
/// section), so base and transformed programs each get exactly one blob.
pub fn trace_key(program_text: &str, scale: Scale) -> String {
    stage_key("trace", program_text, scale, &[])
}

/// Key for the Figure-6 transform of `program_text` under `opts`.
pub fn transform_key(program_text: &str, scale: Scale, opts: &DriverOptions) -> String {
    stage_key("transform", program_text, scale, &[&describe_options(opts)])
}

/// Key for a cycle-level simulation of `program_text` under `scheme`/`cfg`.
pub fn sim_key(program_text: &str, scale: Scale, scheme: Scheme, cfg: &MachineConfig) -> String {
    stage_key(
        "sim",
        program_text,
        scale,
        &[&format!("{scheme:?}"), &describe_config(cfg)],
    )
}

/// Key for an *observed* simulation (stats + cycle accounting) of
/// `program_text` under `scheme`/`cfg`.  Distinct from [`sim_key`] so plain
/// and observed runs never alias each other's payload shapes.
pub fn obs_sim_key(
    program_text: &str,
    scale: Scale,
    scheme: Scheme,
    cfg: &MachineConfig,
) -> String {
    stage_key(
        "obsim",
        program_text,
        scale,
        &[&format!("{scheme:?}"), &describe_config(cfg)],
    )
}

/// Key for a *sampled* simulation ({stats, sampling} payload).  The sample
/// parameters ride in the extras so every distinct sampling configuration
/// gets its own entry, and the stage tag differs from [`sim_key`] so a
/// sampled payload can never alias an exact one.
pub fn sampled_sim_key(
    program_text: &str,
    scale: Scale,
    scheme: Scheme,
    cfg: &MachineConfig,
    sample: &SampleParams,
) -> String {
    stage_key(
        "smpsim",
        program_text,
        scale,
        &[
            &format!("{scheme:?}"),
            &describe_config(cfg),
            &describe_sample(sample),
        ],
    )
}

/// Key for a sampled *observed* simulation ({stats, accounting, sampling}).
pub fn sampled_obs_sim_key(
    program_text: &str,
    scale: Scale,
    scheme: Scheme,
    cfg: &MachineConfig,
    sample: &SampleParams,
) -> String {
    stage_key(
        "smpobsim",
        program_text,
        scale,
        &[
            &format!("{scheme:?}"),
            &describe_config(cfg),
            &describe_sample(sample),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_inputs_separate_keys() {
        let opts = DriverOptions::proposed();
        let cfg = MachineConfig::r10000();
        let p = profile_key("prog", Scale::Test);
        let t = transform_key("prog", Scale::Test, &opts);
        let s = sim_key("prog", Scale::Test, Scheme::TwoBit, &cfg);
        let tr = trace_key("prog", Scale::Test);
        assert_ne!(p, t);
        assert_ne!(t, s);
        assert_ne!(tr, p, "trace and profile keys must not alias");
        assert_ne!(
            trace_key("prog", Scale::Test),
            trace_key("prog2", Scale::Test)
        );
        assert_ne!(
            trace_key("prog", Scale::Test),
            trace_key("prog", Scale::Small)
        );
        assert_ne!(
            profile_key("prog", Scale::Test),
            profile_key("prog", Scale::Small)
        );
        assert_ne!(
            profile_key("prog", Scale::Test),
            profile_key("prog2", Scale::Test)
        );
        assert_ne!(
            sim_key("prog", Scale::Test, Scheme::TwoBit, &cfg),
            sim_key("prog", Scale::Test, Scheme::Perfect, &cfg)
        );
        assert_ne!(
            obs_sim_key("prog", Scale::Test, Scheme::TwoBit, &cfg),
            sim_key("prog", Scale::Test, Scheme::TwoBit, &cfg),
            "observed and plain sim keys must not alias"
        );
        assert_ne!(
            obs_sim_key("prog", Scale::Test, Scheme::TwoBit, &cfg),
            obs_sim_key("prog", Scale::Test, Scheme::Perfect, &cfg)
        );
    }

    #[test]
    fn sampled_keys_are_distinct_and_parameter_sensitive() {
        let cfg = MachineConfig::r10000();
        let base = SampleParams::default();
        let smp = sampled_sim_key("prog", Scale::Test, Scheme::TwoBit, &cfg, &base);
        let osmp = sampled_obs_sim_key("prog", Scale::Test, Scheme::TwoBit, &cfg, &base);
        assert_ne!(
            smp,
            sim_key("prog", Scale::Test, Scheme::TwoBit, &cfg),
            "sampled and exact sim keys must not alias"
        );
        assert_ne!(
            osmp,
            obs_sim_key("prog", Scale::Test, Scheme::TwoBit, &cfg),
            "sampled and exact observed keys must not alias"
        );
        assert_ne!(smp, osmp);
        // Every SampleParams field is key-relevant.
        for (i, p) in [
            SampleParams {
                detail: base.detail + 1,
                ..base
            },
            SampleParams {
                warmup: base.warmup + 1,
                ..base
            },
            SampleParams {
                interval: base.interval + 1,
                ..base
            },
        ]
        .iter()
        .enumerate()
        {
            assert_ne!(
                smp,
                sampled_sim_key("prog", Scale::Test, Scheme::TwoBit, &cfg, p),
                "sample field {i} not keyed"
            );
            assert_ne!(
                osmp,
                sampled_obs_sim_key("prog", Scale::Test, Scheme::TwoBit, &cfg, p),
                "sample field {i} not keyed (observed)"
            );
        }
    }

    #[test]
    fn preset_options_all_distinct() {
        let keys: Vec<String> = [
            DriverOptions::baseline(),
            DriverOptions::speculation_only(),
            DriverOptions::guarded_only(),
            DriverOptions::conventional(),
            DriverOptions::proposed(),
        ]
        .iter()
        .map(|o| transform_key("p", Scale::Test, o))
        .collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "presets {i} and {j} alias");
            }
        }
    }
}
