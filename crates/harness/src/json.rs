//! Hand-rolled JSON: an ordered value model, a writer, and a parser.
//!
//! The sanctioned dependency set has no `serde`, so the harness carries its
//! own minimal JSON layer.  Two properties matter here:
//!
//! * **Determinism** — objects preserve insertion order (a `Vec` of pairs,
//!   not a hash map), so the same value always serializes to the same bytes.
//!   The cache-correctness tests compare artifacts byte-for-byte.
//! * **Exactness** — integers are kept as `u64`/`i64` (never bounced through
//!   `f64`), so counters like cycle counts survive a cache round-trip
//!   unchanged.  Full-range bit patterns (e.g. packed branch-outcome words)
//!   are stored as hex strings by the codec layer instead of numbers.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(v) => Some(v),
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline — the on-disk artifact format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip float printing; force a
                    // fractional marker so the parser reads it back as f64.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (strict enough for round-tripping our own output;
/// rejects trailing garbage).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    pairs.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|e| e.to_string())
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|e| e.to_string())
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_order() {
        let v = Json::obj(vec![
            ("zebra", Json::U64(u64::MAX)),
            (
                "alpha",
                Json::Arr(vec![Json::I64(-3), Json::F64(0.25), Json::Null]),
            ),
            ("s", Json::str("line\n\"quote\" \\ tab\t")),
            ("flag", Json::Bool(true)),
            ("empty", Json::Obj(Vec::new())),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "failed on {text}");
        }
        // Key order is preserved, not sorted.
        assert!(v.to_compact().find("zebra").unwrap() < v.to_compact().find("alpha").unwrap());
    }

    #[test]
    fn u64_exactness() {
        for n in [0u64, 1, (1 << 53) + 1, u64::MAX] {
            let t = Json::U64(n).to_compact();
            assert_eq!(parse(&t).unwrap().as_u64(), Some(n));
        }
    }

    #[test]
    fn float_roundtrip_marker() {
        assert_eq!(Json::F64(2.0).to_compact(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Json::F64(2.0));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
