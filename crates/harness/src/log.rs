//! Structured leveled logging: one JSON object per line, stderr only.
//!
//! Replaces the scattered `eprintln!`s so daemon/bench diagnostics are
//! machine-parseable and never pollute stdout (piped artifacts stay
//! byte-clean).  Each line is a compact JSON object:
//!
//! ```text
//! {"ts_ms":1754650000123,"level":"warn","event":"cache.discard","key":"...","error":"..."}
//! ```
//!
//! plus a `"trace"` field when the message belongs to a traced request.
//! The level is a process-global atomic (default `warn`) set from a
//! `--log-level off|error|warn|info|debug` flag; disabled levels cost one
//! relaxed atomic load.  Timestamps are wall-clock milliseconds — fine
//! for logs, never for artifacts (which stay timestamp-free).

use crate::json::Json;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered so `level <= current` means "emit".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    Off = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
}

impl LogLevel {
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

/// Parse a `--log-level` value.
pub fn parse_log_level(s: &str) -> Result<LogLevel, String> {
    match s {
        "off" => Ok(LogLevel::Off),
        "error" => Ok(LogLevel::Error),
        "warn" => Ok(LogLevel::Warn),
        "info" => Ok(LogLevel::Info),
        "debug" => Ok(LogLevel::Debug),
        other => Err(format!(
            "bad --log-level {other:?} (want off|error|warn|info|debug)"
        )),
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Warn as u8);

/// Set the process-global log level.
pub fn set_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-global log level.
pub fn level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => LogLevel::Off,
        1 => LogLevel::Error,
        2 => LogLevel::Warn,
        3 => LogLevel::Info,
        _ => LogLevel::Debug,
    }
}

/// Would a message at `l` be emitted?  Callers with expensive field
/// construction should gate on this first.
pub fn enabled(l: LogLevel) -> bool {
    l != LogLevel::Off && l <= level()
}

/// Render one log line (no timestamp — the testable core).
pub fn format_line(
    l: LogLevel,
    trace: Option<&str>,
    event: &str,
    fields: &[(&str, Json)],
) -> String {
    let mut obj: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 3);
    obj.push(("level".to_string(), Json::str(l.as_str())));
    obj.push(("event".to_string(), Json::str(event)));
    if let Some(t) = trace {
        obj.push(("trace".to_string(), Json::str(t)));
    }
    for (k, v) in fields {
        obj.push((k.to_string(), v.clone()));
    }
    Json::Obj(obj).to_compact()
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Emit one structured line to stderr if `l` is enabled.
pub fn emit(l: LogLevel, trace: Option<&str>, event: &str, fields: &[(&str, Json)]) {
    if !enabled(l) {
        return;
    }
    let mut obj: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 4);
    obj.push(("ts_ms".to_string(), Json::U64(now_ms())));
    obj.push(("level".to_string(), Json::str(l.as_str())));
    obj.push(("event".to_string(), Json::str(event)));
    if let Some(t) = trace {
        obj.push(("trace".to_string(), Json::str(t)));
    }
    for (k, v) in fields {
        obj.push((k.to_string(), v.clone()));
    }
    eprintln!("{}", Json::Obj(obj).to_compact());
}

pub fn error(event: &str, fields: &[(&str, Json)]) {
    emit(LogLevel::Error, None, event, fields);
}

pub fn warn(event: &str, fields: &[(&str, Json)]) {
    emit(LogLevel::Warn, None, event, fields);
}

pub fn info(event: &str, fields: &[(&str, Json)]) {
    emit(LogLevel::Info, None, event, fields);
}

pub fn debug(event: &str, fields: &[(&str, Json)]) {
    emit(LogLevel::Debug, None, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(parse_log_level("debug").unwrap(), LogLevel::Debug);
        assert_eq!(parse_log_level("off").unwrap(), LogLevel::Off);
        assert!(parse_log_level("verbose").is_err());
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn lines_are_single_compact_json_objects() {
        let line = format_line(
            LogLevel::Warn,
            Some("ab12-s0"),
            "cache.discard",
            &[("key", Json::str("resp-x")), ("bytes", Json::U64(42))],
        );
        assert!(!line.contains('\n'));
        let j = crate::json::parse(&line).unwrap();
        assert_eq!(j.get("level").and_then(Json::as_str), Some("warn"));
        assert_eq!(j.get("event").and_then(Json::as_str), Some("cache.discard"));
        assert_eq!(j.get("trace").and_then(Json::as_str), Some("ab12-s0"));
        assert_eq!(j.get("bytes").and_then(Json::as_u64), Some(42));
    }

    #[test]
    fn off_disables_everything() {
        // Note: level is process-global; restore it for other tests.
        let prev = level();
        set_level(LogLevel::Off);
        assert!(!enabled(LogLevel::Error));
        set_level(LogLevel::Debug);
        assert!(enabled(LogLevel::Debug));
        set_level(prev);
    }
}
