//! Shared command-line parsing for the bench binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--scale test|small|paper` — workload size preset (default `small`),
//! * `--jobs N` — worker threads (`0`/absent = one per core; `1` = the
//!   deterministic serial reference schedule),
//! * `--json <path>` — additionally write the run's machine-readable
//!   artifact to `<path>`,
//! * `--stable-json <path>` — additionally write the run's *stable*
//!   payload (no timings or machine-local meta) to `<path>`; this is the
//!   byte-comparable form the simulation server also returns,
//! * `--no-stream` — simulate from a fully materialized trace on one
//!   thread instead of streaming it from a concurrent interpreter
//!   (the right choice on single-core containers; only affects the
//!   `--no-fanout` path),
//! * `--no-fanout` — interpret once per cell (the historical pipeline)
//!   instead of tracing each distinct program once and fanning the shared
//!   trace out to every dependent simulation,
//! * `--no-trace-cache` — do not persist/reuse binary trace blobs under
//!   `results/cache/`; every fan-out run re-interprets.
//! * `--observe` — run cycle accounting and per-branch-site attribution in
//!   the simulator and attach the buckets/top-sites to the artifact.
//! * `--trace-out <path>` — write a Chrome trace-event (Perfetto-loadable)
//!   span timeline of the job graph to `<path>` (implies span recording).
//! * `--no-compile` — simulate through the historical per-entry interpreted
//!   dispatch loop instead of the compiled block-descriptor engine.  Results
//!   are byte-identical either way (and share cache entries); the flag
//!   exists for differential testing and benchmarking.
//! * `--sample` — SMARTS-style interval sampling: simulate short detailed
//!   windows, functionally warm the predictors/caches between them, and
//!   attach a per-cell `sampling` estimate (mean IPC ± 95% CI) to the
//!   artifact.  Forces the compiled engine and the fan-out pipeline.
//! * `--sample-detail N` / `--sample-warm N` / `--sample-interval N` —
//!   override the measured/warm-up/total entries per sampling interval
//!   (each implies `--sample`).
//! * `--log-level off|error|warn|info|debug` — structured-log verbosity
//!   (one JSON object per line on **stderr**; default `warn`).  Parsing
//!   this flag also sets the process-global [`crate::log`] level, so
//!   every binary gets leveled logging for free.
//!
//! Bad values print a one-line diagnostic to **stderr** and exit with
//! status 2 — never a panic with a backtrace.  Unknown arguments are
//! **rejected** the same way (the offending flag named in the diagnostic):
//! a typo like `--job 4` silently running the default configuration was a
//! footgun.  Binaries with extra flags parse them through
//! [`HarnessArgs::try_parse_with`], which consults a binary-specific hook
//! before rejecting.

use guardspec_sim::SampleParams;
use guardspec_workloads::Scale;
use std::path::PathBuf;

/// Parsed common flags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HarnessArgs {
    pub scale: Scale,
    /// `0` means auto (one worker per available core).
    pub jobs: usize,
    /// Where to write the JSON artifact, if requested.
    pub json: Option<PathBuf>,
    /// Where to write the stable (deterministic) payload, if requested.
    pub stable_json: Option<PathBuf>,
    /// Disable the streaming trace pipeline (single-threaded fallback).
    pub no_stream: bool,
    /// Disable trace-once/simulate-many fan-out (per-cell interpretation).
    pub no_fanout: bool,
    /// Disable the persistent binary trace cache.
    pub no_trace_cache: bool,
    /// Enable simulator cycle accounting + per-site attribution.
    pub observe: bool,
    /// Where to write the Chrome trace-event timeline, if requested.
    pub trace_out: Option<PathBuf>,
    /// Use the interpreted per-entry dispatch loop instead of the compiled
    /// block-descriptor engine (results identical; differential knob).
    pub no_compile: bool,
    /// Enable SMARTS-style interval sampling.
    pub sample: bool,
    /// Measured entries per sampling window.
    pub sample_detail: u64,
    /// Detailed warm-up entries preceding each measured region.
    pub sample_warm: u64,
    /// Total entries per sampling interval (gap + warm-up + detail).
    pub sample_interval: u64,
    /// Structured-log verbosity (stderr-only JSON lines).
    pub log_level: crate::log::LogLevel,
}

impl Default for HarnessArgs {
    fn default() -> HarnessArgs {
        HarnessArgs {
            scale: Scale::Small,
            jobs: 0,
            json: None,
            stable_json: None,
            no_stream: false,
            no_fanout: false,
            no_trace_cache: false,
            observe: false,
            trace_out: None,
            no_compile: false,
            sample: false,
            sample_detail: SampleParams::default().detail,
            sample_warm: SampleParams::default().warmup,
            sample_interval: SampleParams::default().interval,
            log_level: crate::log::LogLevel::Warn,
        }
    }
}

/// Parse a `--scale` value.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "test" => Ok(Scale::Test),
        "small" => Ok(Scale::Small),
        "paper" => Ok(Scale::Paper),
        other => Err(format!("bad --scale {other:?} (want test|small|paper)")),
    }
}

/// Parse a `--jobs` value.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("bad --jobs {s:?} (want a non-negative integer)"))
}

/// Parse a `u64` count for a `--sample-*` flag.  Out-of-range combinations
/// (zero detail, interval shorter than a window) are normalized by
/// [`SampleParams::normalized`] rather than rejected.
pub fn parse_count(s: &str, flag: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("bad {flag} {s:?} (want a non-negative integer)"))
}

/// The standard unknown-argument diagnostic (names the offending flag).
/// Every binary — bench, `gsd`, `gsc`, `fuzz` — routes rejection through
/// this so the message shape stays greppable.
pub fn unknown_argument(arg: &str) -> String {
    format!("unknown argument {arg:?}")
}

/// Pull the value following a flag, or explain which flag wanted one.
pub fn take_value(args: &mut dyn Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

impl HarnessArgs {
    /// The sampling parameters, if `--sample` (or any `--sample-*`
    /// override) was given.
    pub fn sample_params(&self) -> Option<SampleParams> {
        self.sample.then_some(SampleParams {
            detail: self.sample_detail,
            warmup: self.sample_warm,
            interval: self.sample_interval,
        })
    }

    /// Parse the process arguments; on error print to stderr and exit(2).
    pub fn parse() -> HarnessArgs {
        HarnessArgs::parse_with(|_, _| Ok(false))
    }

    /// [`HarnessArgs::parse`] with a binary-specific extension hook (see
    /// [`HarnessArgs::try_parse_with`]); errors print to stderr + exit(2).
    pub fn parse_with(
        extra: impl FnMut(&str, &mut dyn Iterator<Item = String>) -> Result<bool, String>,
    ) -> HarnessArgs {
        match HarnessArgs::try_parse_with(std::env::args().skip(1), extra) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--scale test|small|paper] [--jobs N] [--json <path>] \
                     [--stable-json <path>] [--no-stream] [--no-fanout] \
                     [--no-trace-cache] [--observe] [--trace-out <path>] \
                     [--no-compile] [--sample] [--sample-detail N] \
                     [--sample-warm N] [--sample-interval N] \
                     [--log-level off|error|warn|info|debug]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Testable core of [`HarnessArgs::parse`].  Unknown arguments are
    /// errors naming the offending flag.
    pub fn try_parse(args: impl Iterator<Item = String>) -> Result<HarnessArgs, String> {
        HarnessArgs::try_parse_with(args, |_, _| Ok(false))
    }

    /// [`HarnessArgs::try_parse`] with an extension hook: `extra` sees every
    /// argument the common parser does not recognise (plus the argument
    /// iterator, to consume a value) and returns `Ok(true)` if it handled
    /// it.  Unhandled arguments fail with [`unknown_argument`].
    pub fn try_parse_with(
        args: impl Iterator<Item = String>,
        mut extra: impl FnMut(&str, &mut dyn Iterator<Item = String>) -> Result<bool, String>,
    ) -> Result<HarnessArgs, String> {
        let mut out = HarnessArgs::default();
        let mut args: Box<dyn Iterator<Item = String>> = Box::new(args);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => out.scale = parse_scale(&take_value(&mut args, "--scale")?)?,
                "--jobs" => out.jobs = parse_jobs(&take_value(&mut args, "--jobs")?)?,
                "--json" => out.json = Some(PathBuf::from(take_value(&mut args, "--json")?)),
                "--stable-json" => {
                    out.stable_json = Some(PathBuf::from(take_value(&mut args, "--stable-json")?))
                }
                "--no-stream" => out.no_stream = true,
                "--no-fanout" => out.no_fanout = true,
                "--no-trace-cache" => out.no_trace_cache = true,
                "--observe" => out.observe = true,
                "--no-compile" => out.no_compile = true,
                "--sample" => out.sample = true,
                "--sample-detail" => {
                    out.sample = true;
                    out.sample_detail = parse_count(
                        &take_value(&mut args, "--sample-detail")?,
                        "--sample-detail",
                    )?;
                }
                "--sample-warm" => {
                    out.sample = true;
                    out.sample_warm =
                        parse_count(&take_value(&mut args, "--sample-warm")?, "--sample-warm")?;
                }
                "--sample-interval" => {
                    out.sample = true;
                    out.sample_interval = parse_count(
                        &take_value(&mut args, "--sample-interval")?,
                        "--sample-interval",
                    )?;
                }
                "--trace-out" => {
                    out.trace_out = Some(PathBuf::from(take_value(&mut args, "--trace-out")?))
                }
                "--log-level" => {
                    out.log_level =
                        crate::log::parse_log_level(&take_value(&mut args, "--log-level")?)?;
                    crate::log::set_level(out.log_level);
                }
                other => {
                    if !extra(other, &mut args)? {
                        return Err(unknown_argument(other));
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        assert_eq!(parse(&[]).unwrap(), HarnessArgs::default());
    }

    #[test]
    fn all_flags() {
        let a = parse(&["--scale", "test", "--jobs", "4", "--json", "out.json"]).unwrap();
        assert_eq!(a.scale, Scale::Test);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("out.json")));
    }

    #[test]
    fn bad_values_are_errors_not_panics() {
        assert!(parse(&["--scale", "huge"])
            .unwrap_err()
            .contains("bad --scale"));
        assert!(parse(&["--jobs", "many"])
            .unwrap_err()
            .contains("bad --jobs"));
        assert!(parse(&["--json"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--scale"]).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn unknown_args_rejected_naming_the_flag() {
        // The historical behaviour silently ignored unknown flags; now the
        // offending argument is named and the parse fails (callers exit 2).
        let err = parse(&["--verbose", "--scale", "paper"]).unwrap_err();
        assert!(err.contains("unknown argument"), "got {err:?}");
        assert!(err.contains("--verbose"), "got {err:?}");
        // A typo'd common flag is caught too, not absorbed as a value.
        assert!(parse(&["--job", "4"]).unwrap_err().contains("--job"));
    }

    #[test]
    fn extension_hook_consumes_extra_flags() {
        let mut seen = Vec::new();
        let a = HarnessArgs::try_parse_with(
            ["--check-trace", "t.json", "--scale", "test"]
                .iter()
                .map(|s| s.to_string()),
            |arg, args| {
                if arg == "--check-trace" {
                    seen.push(take_value(args, "--check-trace")?);
                    Ok(true)
                } else {
                    Ok(false)
                }
            },
        )
        .unwrap();
        assert_eq!(a.scale, Scale::Test);
        assert_eq!(seen, vec!["t.json".to_string()]);
        // The hook declining still rejects.
        let err =
            HarnessArgs::try_parse_with(["--mystery"].iter().map(|s| s.to_string()), |_, _| {
                Ok(false)
            })
            .unwrap_err();
        assert!(err.contains("--mystery"));
    }

    #[test]
    fn no_stream_flag() {
        assert!(!parse(&[]).unwrap().no_stream);
        assert!(parse(&["--no-stream"]).unwrap().no_stream);
    }

    #[test]
    fn observe_and_trace_out_flags() {
        let d = parse(&[]).unwrap();
        assert!(!d.observe);
        assert!(d.trace_out.is_none());
        let a = parse(&["--observe", "--trace-out", "t.json"]).unwrap();
        assert!(a.observe);
        assert_eq!(a.trace_out.as_deref(), Some(std::path::Path::new("t.json")));
        assert!(parse(&["--trace-out"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn stable_json_flag() {
        assert!(parse(&[]).unwrap().stable_json.is_none());
        let a = parse(&["--stable-json", "s.json"]).unwrap();
        assert_eq!(
            a.stable_json.as_deref(),
            Some(std::path::Path::new("s.json"))
        );
        assert!(parse(&["--stable-json"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn no_compile_flag() {
        assert!(!parse(&[]).unwrap().no_compile);
        assert!(parse(&["--no-compile"]).unwrap().no_compile);
    }

    #[test]
    fn sample_flags() {
        let d = parse(&[]).unwrap();
        assert!(!d.sample);
        assert_eq!(d.sample_params(), None);
        // Bare --sample uses the library defaults.
        let a = parse(&["--sample"]).unwrap();
        assert_eq!(a.sample_params(), Some(SampleParams::default()));
        // Each override implies --sample and sets its field.
        let a = parse(&["--sample-detail", "64"]).unwrap();
        assert_eq!(a.sample_params().unwrap().detail, 64);
        let a = parse(&["--sample-warm", "0"]).unwrap();
        assert_eq!(a.sample_params().unwrap().warmup, 0);
        let a = parse(&[
            "--sample",
            "--sample-detail",
            "100",
            "--sample-warm",
            "50",
            "--sample-interval",
            "1000",
        ])
        .unwrap();
        assert_eq!(
            a.sample_params(),
            Some(SampleParams {
                detail: 100,
                warmup: 50,
                interval: 1000,
            })
        );
        // Bad values are clean errors naming the flag.
        assert!(parse(&["--sample-detail", "x"])
            .unwrap_err()
            .contains("--sample-detail"));
        assert!(parse(&["--sample-interval"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn log_level_flag() {
        assert_eq!(parse(&[]).unwrap().log_level, crate::log::LogLevel::Warn);
        let a = parse(&["--log-level", "debug"]).unwrap();
        assert_eq!(a.log_level, crate::log::LogLevel::Debug);
        assert!(parse(&["--log-level", "loud"])
            .unwrap_err()
            .contains("bad --log-level"));
        // Parsing set the process-global level; restore the default so
        // other tests in this binary see the usual threshold.
        crate::log::set_level(crate::log::LogLevel::Warn);
    }

    #[test]
    fn fanout_and_trace_cache_flags() {
        let d = parse(&[]).unwrap();
        assert!(!d.no_fanout);
        assert!(!d.no_trace_cache);
        let a = parse(&["--no-fanout", "--no-trace-cache"]).unwrap();
        assert!(a.no_fanout);
        assert!(a.no_trace_cache);
    }
}
