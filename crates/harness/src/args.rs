//! Shared command-line parsing for the bench binaries.
//!
//! Every binary accepts the same three flags:
//!
//! * `--scale test|small|paper` — workload size preset (default `small`),
//! * `--jobs N` — worker threads (`0`/absent = one per core; `1` = the
//!   deterministic serial reference schedule),
//! * `--json <path>` — additionally write the run's machine-readable
//!   artifact to `<path>`,
//! * `--no-stream` — simulate from a fully materialized trace on one
//!   thread instead of streaming it from a concurrent interpreter
//!   (the right choice on single-core containers; only affects the
//!   `--no-fanout` path),
//! * `--no-fanout` — interpret once per cell (the historical pipeline)
//!   instead of tracing each distinct program once and fanning the shared
//!   trace out to every dependent simulation,
//! * `--no-trace-cache` — do not persist/reuse binary trace blobs under
//!   `results/cache/`; every fan-out run re-interprets.
//! * `--observe` — run cycle accounting and per-branch-site attribution in
//!   the simulator and attach the buckets/top-sites to the artifact.
//! * `--trace-out <path>` — write a Chrome trace-event (Perfetto-loadable)
//!   span timeline of the job graph to `<path>` (implies span recording).
//!
//! Bad values print a one-line diagnostic to **stderr** and exit with
//! status 2 — never a panic with a backtrace.  Unknown arguments are
//! ignored, matching the historical behaviour of the table binaries (so
//! e.g. cargo-forwarded test filters don't kill a run).

use guardspec_workloads::Scale;
use std::path::PathBuf;

/// Parsed common flags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HarnessArgs {
    pub scale: Scale,
    /// `0` means auto (one worker per available core).
    pub jobs: usize,
    /// Where to write the JSON artifact, if requested.
    pub json: Option<PathBuf>,
    /// Disable the streaming trace pipeline (single-threaded fallback).
    pub no_stream: bool,
    /// Disable trace-once/simulate-many fan-out (per-cell interpretation).
    pub no_fanout: bool,
    /// Disable the persistent binary trace cache.
    pub no_trace_cache: bool,
    /// Enable simulator cycle accounting + per-site attribution.
    pub observe: bool,
    /// Where to write the Chrome trace-event timeline, if requested.
    pub trace_out: Option<PathBuf>,
}

impl Default for HarnessArgs {
    fn default() -> HarnessArgs {
        HarnessArgs {
            scale: Scale::Small,
            jobs: 0,
            json: None,
            no_stream: false,
            no_fanout: false,
            no_trace_cache: false,
            observe: false,
            trace_out: None,
        }
    }
}

/// Parse a `--scale` value.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "test" => Ok(Scale::Test),
        "small" => Ok(Scale::Small),
        "paper" => Ok(Scale::Paper),
        other => Err(format!("bad --scale {other:?} (want test|small|paper)")),
    }
}

/// Parse a `--jobs` value.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("bad --jobs {s:?} (want a non-negative integer)"))
}

impl HarnessArgs {
    /// Parse the process arguments; on error print to stderr and exit(2).
    pub fn parse() -> HarnessArgs {
        match HarnessArgs::try_parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--scale test|small|paper] [--jobs N] [--json <path>] \
                     [--no-stream] [--no-fanout] [--no-trace-cache] \
                     [--observe] [--trace-out <path>]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Testable core of [`HarnessArgs::parse`].
    pub fn try_parse(args: impl Iterator<Item = String>) -> Result<HarnessArgs, String> {
        let mut out = HarnessArgs::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match arg.as_str() {
                "--scale" => out.scale = parse_scale(&value("--scale")?)?,
                "--jobs" => out.jobs = parse_jobs(&value("--jobs")?)?,
                "--json" => out.json = Some(PathBuf::from(value("--json")?)),
                "--no-stream" => out.no_stream = true,
                "--no-fanout" => out.no_fanout = true,
                "--no-trace-cache" => out.no_trace_cache = true,
                "--observe" => out.observe = true,
                "--trace-out" => out.trace_out = Some(PathBuf::from(value("--trace-out")?)),
                _ => {} // Tolerated, like the pre-harness binaries.
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        assert_eq!(parse(&[]).unwrap(), HarnessArgs::default());
    }

    #[test]
    fn all_flags() {
        let a = parse(&["--scale", "test", "--jobs", "4", "--json", "out.json"]).unwrap();
        assert_eq!(a.scale, Scale::Test);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("out.json")));
    }

    #[test]
    fn bad_values_are_errors_not_panics() {
        assert!(parse(&["--scale", "huge"])
            .unwrap_err()
            .contains("bad --scale"));
        assert!(parse(&["--jobs", "many"])
            .unwrap_err()
            .contains("bad --jobs"));
        assert!(parse(&["--json"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--scale"]).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn unknown_args_ignored() {
        let a = parse(&["--verbose", "extra", "--scale", "paper"]).unwrap();
        assert_eq!(a.scale, Scale::Paper);
    }

    #[test]
    fn no_stream_flag() {
        assert!(!parse(&[]).unwrap().no_stream);
        assert!(parse(&["--no-stream"]).unwrap().no_stream);
    }

    #[test]
    fn observe_and_trace_out_flags() {
        let d = parse(&[]).unwrap();
        assert!(!d.observe);
        assert!(d.trace_out.is_none());
        let a = parse(&["--observe", "--trace-out", "t.json"]).unwrap();
        assert!(a.observe);
        assert_eq!(a.trace_out.as_deref(), Some(std::path::Path::new("t.json")));
        assert!(parse(&["--trace-out"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn fanout_and_trace_cache_flags() {
        let d = parse(&[]).unwrap();
        assert!(!d.no_fanout);
        assert!(!d.no_trace_cache);
        let a = parse(&["--no-fanout", "--no-trace-cache"]).unwrap();
        assert!(a.no_fanout);
        assert!(a.no_trace_cache);
    }
}
