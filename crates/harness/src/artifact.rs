//! Run artifacts: `results/BENCH_<n>.json`.
//!
//! Two views of an [`ExperimentResult`]:
//!
//! * [`stable_json`] — only the *science*: workload profiles, transform
//!   report counts and simulator statistics, in spec order.  A cold run and
//!   a warm (fully cached) run of the same spec produce **byte-identical**
//!   stable JSON; the cache-correctness tests diff exactly this.
//! * [`full_json`] — the stable payload plus a `meta` object (jobs,
//!   wall-clock, cache hit/miss counters) and per-stage wall times, which
//!   naturally differ run to run.
//!
//! [`emit_bench_artifact`] claims the first free `BENCH_<n>.json` under the
//! results directory with `O_EXCL`, so concurrent binaries never clobber
//! each other's artifacts.

use crate::codec;
use crate::json::Json;
use crate::key::scale_tag;
use crate::runner::{CellResult, ExperimentResult, StageTiming, WorkloadResult};
use std::io::Write;
use std::path::{Path, PathBuf};

fn workload_stable(w: &WorkloadResult) -> Vec<(&'static str, Json)> {
    vec![
        ("name", Json::str(&w.name)),
        ("retired", Json::U64(w.profile.retired)),
        ("annulled", Json::U64(w.profile.annulled)),
        (
            "branch_sites",
            Json::U64(w.profile.num_branch_sites() as u64),
        ),
    ]
}

/// Sites listed per cell under `top_sites` (most recovery cycles first).
const TOP_SITES_K: usize = 8;

fn cell_stable(c: &CellResult) -> Vec<(&'static str, Json)> {
    let mut fields = vec![
        ("workload", Json::str(&c.workload)),
        ("label", Json::str(&c.label)),
        ("scheme", Json::str(c.scheme.label())),
    ];
    if let Some(report) = &c.report {
        fields.push(("report", codec::report_to_json(report)));
    }
    fields.push(("stats", codec::stats_to_json(&c.stats)));
    if let Some(s) = &c.sampling {
        // Only present on `--sample` runs: exact runs carry no sampling
        // fields at all, so their stable payloads stay byte-identical to
        // every pre-sampling artifact.
        fields.push((
            "sampling",
            Json::obj(vec![
                ("windows", Json::U64(s.windows)),
                ("detail", Json::U64(s.detail)),
                ("warmup", Json::U64(s.warmup)),
                ("interval", Json::U64(s.interval)),
                ("measured_entries", Json::U64(s.measured_entries)),
                ("total_entries", Json::U64(s.total_entries)),
                ("ipc_mean", Json::F64(s.ipc_mean)),
                ("ipc_ci95", Json::F64(s.ipc_ci95)),
                ("est_cycles", Json::U64(s.est_cycles)),
            ]),
        ));
    }
    if let Some(acct) = &c.accounting {
        fields.push((
            "cycle_buckets",
            Json::Obj(
                guardspec_sim::CycleBucket::ALL
                    .into_iter()
                    .map(|b| (b.name().to_string(), Json::U64(acct.bucket(b))))
                    .collect(),
            ),
        ));
        fields.push((
            "top_sites",
            Json::Arr(
                acct.top_sites(TOP_SITES_K)
                    .into_iter()
                    .map(|(id, s)| {
                        Json::obj(vec![
                            ("id", Json::U64(id as u64)),
                            ("executions", Json::U64(s.executions)),
                            ("mispredicts", Json::U64(s.mispredicts)),
                            ("likely_mispredicts", Json::U64(s.likely_mispredicts)),
                            ("recovery_cycles", Json::U64(s.recovery_cycles)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    fields
}

fn timing_json(t: StageTiming) -> Json {
    Json::obj(vec![
        ("ms", Json::F64(t.ms)),
        ("cached", Json::Bool(t.cached)),
    ])
}

/// The deterministic result payload (no timings, no machine-local meta).
pub fn stable_json(r: &ExperimentResult) -> Json {
    Json::obj(vec![
        ("experiment", Json::str(&r.name)),
        ("scale", Json::str(scale_tag(r.scale))),
        (
            "workloads",
            Json::Arr(
                r.workloads
                    .iter()
                    .map(|w| Json::obj(workload_stable(w)))
                    .collect(),
            ),
        ),
        (
            "cells",
            Json::Arr(r.cells.iter().map(|c| Json::obj(cell_stable(c))).collect()),
        ),
    ])
}

/// The complete artifact: stable payload + meta + per-stage timings.
pub fn full_json(r: &ExperimentResult) -> Json {
    let mut meta_fields = vec![
        ("experiment", Json::str(&r.name)),
        ("scale", Json::str(scale_tag(r.scale))),
        ("jobs", Json::U64(r.jobs as u64)),
        ("wall_ms", Json::F64(r.wall_ms)),
        ("cache_hits", Json::U64(r.cache_hits)),
        ("cache_misses", Json::U64(r.cache_misses)),
        ("interpretations", Json::U64(r.interpretations)),
    ];
    if !r.metrics.is_empty() {
        meta_fields.push((
            "metrics",
            Json::Obj(
                r.metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::U64(*v)))
                    .collect(),
            ),
        ));
    }
    let meta = Json::obj(meta_fields);
    let workloads = r
        .workloads
        .iter()
        .map(|w| {
            let mut fields = workload_stable(w);
            fields.push(("profile", timing_json(w.timing)));
            Json::obj(fields)
        })
        .collect();
    let cells = r
        .cells
        .iter()
        .map(|c| {
            let mut fields = cell_stable(c);
            if let Some(t) = c.transform_timing {
                fields.push(("transform", timing_json(t)));
            }
            if let Some(t) = c.trace_timing {
                fields.push(("trace", timing_json(t)));
            }
            fields.push(("simulate", timing_json(c.sim_timing)));
            Json::obj(fields)
        })
        .collect();
    Json::obj(vec![
        ("meta", meta),
        ("workloads", Json::Arr(workloads)),
        ("cells", Json::Arr(cells)),
    ])
}

/// Write pretty JSON to an explicit path (the `--json <path>` flag).
pub fn write_json_file(path: &Path, json: &Json) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, json.to_pretty())
}

/// Write the full artifact to the first free `BENCH_<n>.json` under
/// `results_dir` (n counts up from 1) and return its path.
pub fn emit_bench_artifact(results_dir: &Path, r: &ExperimentResult) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(results_dir)?;
    let body = full_json(r).to_pretty();
    for n in 1u32.. {
        let path = results_dir.join(format!("BENCH_{n}.json"));
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                f.write_all(body.as_bytes())?;
                return Ok(path);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    unreachable!("u32 exhausted")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_numbering_skips_existing() {
        let dir =
            std::env::temp_dir().join(format!("guardspec-artifact-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = ExperimentResult {
            name: "t".into(),
            scale: guardspec_workloads::Scale::Test,
            jobs: 1,
            wall_ms: 0.0,
            cache_hits: 0,
            cache_misses: 0,
            interpretations: 0,
            workloads: Vec::new(),
            cells: Vec::new(),
            spans: Vec::new(),
            metrics: vec![("transform.bin_decoded".to_string(), 2)],
        };
        let p1 = emit_bench_artifact(&dir, &r).unwrap();
        let p2 = emit_bench_artifact(&dir, &r).unwrap();
        assert_eq!(p1.file_name().unwrap(), "BENCH_1.json");
        assert_eq!(p2.file_name().unwrap(), "BENCH_2.json");
        // The artifact parses and carries the meta block.
        let text = std::fs::read_to_string(&p1).unwrap();
        let j = crate::json::parse(&text).unwrap();
        assert_eq!(
            j.get("meta")
                .and_then(|m| m.get("experiment"))
                .and_then(Json::as_str),
            Some("t")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
