//! Chrome trace-event export for the job graph (`--trace-out <file>`).
//!
//! Stages record [`Span`]s through a shared [`SpanRecorder`]; after the run,
//! [`chrome_trace_json`] renders them in the Chrome trace-event format
//! (`{"traceEvents": [...]}` with `ph:"X"` complete events), which loads
//! directly in Perfetto (ui.perfetto.dev) and `chrome://tracing`.
//!
//! * Timestamps are microseconds since the recorder was created, so traces
//!   carry no wall-clock and diff cleanly apart from durations.
//! * Worker threads get small dense `tid`s in first-use order (assigned via
//!   a thread-local, so the pool itself needs no instrumentation), plus a
//!   `ph:"M"` thread-name metadata record each.
//! * [`validate_chrome_trace`] is the CI check: required fields present and
//!   spans on one thread strictly nest (a stage that overlaps another
//!   half-way is a recorder bug, not a real schedule).

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One completed stage execution.
#[derive(Clone, Debug)]
pub struct Span {
    /// Event name, e.g. `simulate xlisp/Proposed`.
    pub name: String,
    /// Chrome category — the stage kind (`profile`/`transform`/`trace`/`simulate`).
    pub cat: &'static str,
    /// Start, microseconds since recorder creation.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Dense per-thread id (first-use order).
    pub tid: u64,
    /// Extra key/value detail rendered into the event's `args`.
    pub args: Vec<(String, String)>,
}

/// Dense trace `tid` for the calling thread.
fn chrome_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Collects spans from all worker threads; a disabled recorder is a cheap
/// no-op so instrumented code paths need no conditionals.
#[derive(Debug)]
pub struct SpanRecorder {
    t0: Instant,
    enabled: bool,
    spans: Mutex<Vec<Span>>,
}

impl SpanRecorder {
    pub fn new(enabled: bool) -> SpanRecorder {
        SpanRecorder::with_origin(enabled, Instant::now())
    }

    /// A recorder whose timestamps are measured from `t0`.  Request-scoped
    /// tracing passes the instant the request arrived so phase spans that
    /// share boundary `Instant`s tile exactly (identical microsecond
    /// timestamps) in the emitted document.
    pub fn with_origin(enabled: bool, t0: Instant) -> SpanRecorder {
        SpanRecorder {
            t0,
            enabled,
            spans: Mutex::new(Vec::new()),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span that started at `start` (an `Instant` the stage
    /// captured) and ends now, on the calling thread's trace track.
    pub fn record(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start: Instant,
        args: Vec<(String, String)>,
    ) {
        if !self.enabled {
            return;
        }
        let ts_us = start
            .saturating_duration_since(self.t0)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let dur_us = (start.elapsed().as_micros().max(1)).min(u64::MAX as u128) as u64;
        let span = Span {
            name: name.into(),
            cat,
            ts_us,
            dur_us,
            tid: chrome_tid(),
            args,
        };
        self.spans.lock().unwrap().push(span);
    }

    /// Record a span over an explicit `[start, end]` window.  Unlike
    /// [`SpanRecorder::record`] the duration is *not* clamped to 1 µs:
    /// request-phase spans share boundary `Instant`s with their
    /// neighbours, and padding a zero-length phase would push its end
    /// past the next phase's start (a partial overlap the validator
    /// rejects).  Zero-duration spans are legal trace events.
    pub fn record_to(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start: Instant,
        end: Instant,
        args: Vec<(String, String)>,
    ) {
        if !self.enabled {
            return;
        }
        // Floor both endpoints against the shared origin and subtract:
        // two spans that meet at the same `Instant` then tile exactly
        // (end ts+dur == next ts), which flooring each duration
        // independently would break by ±1µs.
        let ts_us = start
            .saturating_duration_since(self.t0)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let end_us = end
            .saturating_duration_since(self.t0)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let dur_us = end_us.saturating_sub(ts_us);
        self.record_span(Span {
            name: name.into(),
            cat,
            ts_us,
            dur_us,
            tid: chrome_tid(),
            args,
        });
    }

    /// Push an already-built span (used when folding another recorder's
    /// spans — e.g. the runner's stage timeline — into a request trace
    /// with a timestamp offset applied).
    pub fn record_span(&self, span: Span) {
        if !self.enabled {
            return;
        }
        self.spans.lock().unwrap().push(span);
    }

    /// All recorded spans so far (drained), sorted by (start, tid) for
    /// stable output.  `&self` so it works behind the `Arc` the job
    /// closures share.
    pub fn finish(&self) -> Vec<Span> {
        let mut spans = std::mem::take(&mut *self.spans.lock().unwrap());
        spans.sort_by_key(|s| (s.ts_us, s.tid, std::cmp::Reverse(s.dur_us)));
        spans
    }
}

/// Render spans (plus run counters) as a Chrome trace-event document.
pub fn chrome_trace_json(spans: &[Span], metrics: &[(String, u64)]) -> Json {
    let mut events = Vec::new();
    events.push(Json::obj(vec![
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(0)),
        (
            "args",
            Json::obj(vec![("name", Json::str("guardspec-harness"))]),
        ),
    ]));
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(tid)),
            (
                "args",
                Json::obj(vec![("name", Json::str(format!("worker-{tid}")))]),
            ),
        ]));
    }
    for s in spans {
        let args = s
            .args
            .iter()
            .map(|(k, v)| (k.clone(), Json::str(v)))
            .collect();
        events.push(Json::obj(vec![
            ("name", Json::str(&s.name)),
            ("cat", Json::str(s.cat)),
            ("ph", Json::str("X")),
            ("ts", Json::U64(s.ts_us)),
            ("dur", Json::U64(s.dur_us)),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(s.tid)),
            ("args", Json::Obj(args)),
        ]));
    }
    let mut top = vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ];
    if !metrics.is_empty() {
        top.push((
            "metrics",
            Json::Obj(
                metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::U64(*v)))
                    .collect(),
            ),
        ));
    }
    Json::obj(top)
}

/// Render several independent span groups (e.g. a daemon's ring of recent
/// request timelines) as one Chrome trace document.  Each group's `tid`s
/// are remapped into a private range (`group_index * 1024 + dense rank`),
/// so spans from different requests that happened to run on the same
/// thread cannot violate the per-tid nesting invariant, and each track is
/// named after its group label.
pub fn chrome_trace_json_grouped(groups: &[(String, Vec<Span>)]) -> Json {
    let mut events = Vec::new();
    events.push(Json::obj(vec![
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(0)),
        ("args", Json::obj(vec![("name", Json::str("gsd"))])),
    ]));
    for (gi, (label, spans)) in groups.iter().enumerate() {
        let mut ranks: Vec<u64> = Vec::new();
        let mut remap = |tid: u64| -> u64 {
            let rank = match ranks.iter().position(|&t| t == tid) {
                Some(r) => r,
                None => {
                    ranks.push(tid);
                    ranks.len() - 1
                }
            };
            gi as u64 * 1024 + rank as u64
        };
        let mut ordered: Vec<&Span> = spans.iter().collect();
        ordered.sort_by_key(|s| (s.ts_us, s.tid, std::cmp::Reverse(s.dur_us)));
        let mut mapped: Vec<Json> = Vec::with_capacity(ordered.len());
        for s in &ordered {
            let tid = remap(s.tid);
            let args = s
                .args
                .iter()
                .map(|(k, v)| (k.clone(), Json::str(v)))
                .collect();
            mapped.push(Json::obj(vec![
                ("name", Json::str(&s.name)),
                ("cat", Json::str(s.cat)),
                ("ph", Json::str("X")),
                ("ts", Json::U64(s.ts_us)),
                ("dur", Json::U64(s.dur_us)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(tid)),
                ("args", Json::Obj(args)),
            ]));
        }
        for (rank, _) in ranks.iter().enumerate() {
            events.push(Json::obj(vec![
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(gi as u64 * 1024 + rank as u64)),
                (
                    "args",
                    Json::obj(vec![("name", Json::str(format!("{label}/t{rank}")))]),
                ),
            ]));
        }
        events.extend(mapped);
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

/// CI validation of an emitted trace document: the required trace-event
/// fields are present and complete events strictly nest per thread.
pub fn validate_chrome_trace(j: &Json) -> Result<(), String> {
    let events = j
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace: missing traceEvents array")?;
    if events.is_empty() {
        return Err("trace: no events".to_string());
    }
    // (ts, dur) complete events per tid.
    let mut by_tid: std::collections::BTreeMap<u64, Vec<(u64, u64)>> = Default::default();
    let mut complete = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace: event {i} missing ph"))?;
        for field in ["name", "pid", "tid"] {
            if e.get(field).is_none() {
                return Err(format!("trace: event {i} missing {field}"));
            }
        }
        if ph == "M" {
            continue; // metadata events carry no timestamps
        }
        let ts = e
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("trace: event {i} missing ts"))?;
        if ph != "X" {
            return Err(format!("trace: event {i} has unexpected ph {ph:?}"));
        }
        let dur = e
            .get("dur")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("trace: X event {i} missing dur"))?;
        let tid = e.get("tid").and_then(Json::as_u64).unwrap();
        by_tid.entry(tid).or_default().push((ts, dur));
        complete += 1;
    }
    if complete == 0 {
        return Err("trace: no complete (ph=X) events".to_string());
    }
    for (tid, mut spans) in by_tid {
        spans.sort_by_key(|&(ts, dur)| (ts, std::cmp::Reverse(dur)));
        let mut stack: Vec<u64> = Vec::new(); // open end-times
        for (ts, dur) in spans {
            while stack.last().is_some_and(|&end| end <= ts) {
                stack.pop();
            }
            if let Some(&end) = stack.last() {
                if ts + dur > end {
                    return Err(format!(
                        "trace: spans on tid {tid} partially overlap \
                         ([{ts}, {}] vs enclosing end {end})",
                        ts + dur
                    ));
                }
            }
            stack.push(ts + dur);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = SpanRecorder::new(false);
        r.record("x", "test", Instant::now(), Vec::new());
        assert!(r.finish().is_empty());
    }

    #[test]
    fn recorded_spans_render_and_validate() {
        let r = SpanRecorder::new(true);
        let start = Instant::now();
        r.record(
            "simulate w/cell",
            "simulate",
            start,
            vec![("cached".to_string(), "false".to_string())],
        );
        r.record("profile w", "profile", start, Vec::new());
        let spans = r.finish();
        assert_eq!(spans.len(), 2);
        let j = chrome_trace_json(&spans, &[("cache.hits".to_string(), 3)]);
        validate_chrome_trace(&j).unwrap();
        let text = j.to_pretty();
        assert!(text.contains("traceEvents"));
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("cache.hits"));
        // And the text parses back and still validates (what CI does).
        validate_chrome_trace(&crate::json::parse(&text).unwrap()).unwrap();
    }

    #[test]
    fn validation_rejects_partial_overlap() {
        let mk = |ts: u64, dur: u64| Span {
            name: "s".to_string(),
            cat: "test",
            ts_us: ts,
            dur_us: dur,
            tid: 1,
            args: Vec::new(),
        };
        // [0,10) and [5,15) on one tid: partial overlap.
        let j = chrome_trace_json(&[mk(0, 10), mk(5, 10)], &[]);
        assert!(validate_chrome_trace(&j).unwrap_err().contains("overlap"));
        // [0,10) enclosing [2,5): fine.  Adjacent [10,20): fine.
        let j = chrome_trace_json(&[mk(0, 10), mk(2, 3), mk(10, 10)], &[]);
        validate_chrome_trace(&j).unwrap();
    }

    #[test]
    fn record_to_allows_zero_duration_and_tiles_exactly() {
        let t0 = Instant::now();
        let r = SpanRecorder::with_origin(true, t0);
        // Phase boundaries share the same Instant: spans must tile with
        // identical microsecond timestamps and never overlap.
        let mid = t0 + std::time::Duration::from_micros(250);
        let end = t0 + std::time::Duration::from_micros(900);
        r.record_to("request", "request", t0, end, Vec::new());
        r.record_to("admit", "queue", t0, mid, Vec::new());
        r.record_to("respond", "respond", mid, end, Vec::new());
        r.record_to("instant", "queue", mid, mid, Vec::new()); // zero dur
        let spans = r.finish();
        assert_eq!(spans.len(), 4);
        let admit = spans.iter().find(|s| s.name == "admit").unwrap();
        let respond = spans.iter().find(|s| s.name == "respond").unwrap();
        assert_eq!(admit.ts_us + admit.dur_us, respond.ts_us);
        assert_eq!(
            spans.iter().find(|s| s.name == "instant").unwrap().dur_us,
            0
        );
        validate_chrome_trace(&chrome_trace_json(&spans, &[])).unwrap();
    }

    #[test]
    fn grouped_export_remaps_colliding_tids() {
        let mk = |ts: u64, dur: u64| Span {
            name: "s".to_string(),
            cat: "test",
            ts_us: ts,
            dur_us: dur,
            tid: 7, // same tid in both groups
            args: Vec::new(),
        };
        // As one flat list these would partially overlap on tid 7; the
        // grouped export gives each request its own tid namespace.
        let groups = vec![
            ("req-a".to_string(), vec![mk(0, 10)]),
            ("req-b".to_string(), vec![mk(5, 10)]),
        ];
        let j = chrome_trace_json_grouped(&groups);
        validate_chrome_trace(&j).unwrap();
        let text = j.to_compact();
        assert!(text.contains("req-a/t0"));
        assert!(text.contains("req-b/t0"));
        assert!(validate_chrome_trace(&chrome_trace_json(&[mk(0, 10), mk(5, 10)], &[])).is_err());
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_chrome_trace(&Json::obj(vec![])).is_err());
        let j = Json::obj(vec![(
            "traceEvents",
            Json::Arr(vec![Json::obj(vec![("ph", Json::str("X"))])]),
        )]);
        assert!(validate_chrome_trace(&j).is_err());
    }
}
