//! Content-addressed on-disk result store.
//!
//! Layout (under the root, conventionally `results/cache/`):
//!
//! ```text
//! results/cache/<first two hex chars>/<stage>-<32-hex-digest>.json
//! results/cache/<first two hex chars>/trace-<32-hex-digest>.bin
//! ```
//!
//! Keys come from [`crate::key`]; `.json` values are the JSON encodings
//! from [`crate::codec`], `.bin` values are binary trace blobs in the
//! [`guardspec_interp::tracefile`] format.  Blobs are the only entries
//! with meaningful size, so [`DiskCache::gc_blobs`] caps their total
//! footprint (oldest evicted first); the JSON entries are never evicted.  Writes go through a temp file + rename so concurrent
//! writers of the same key (two worker threads, or two bench binaries
//! running at once) can never expose a torn entry — last writer wins with
//! identical contents, since contents are a pure function of the key.
//!
//! Hit/miss counters are atomic and feed the run artifact, which is how the
//! acceptance criterion "a warm run performs zero re-profiles/re-simulations"
//! is made observable.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug)]
pub struct DiskCache {
    root: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    race_lost: AtomicU64,
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl DiskCache {
    /// A cache rooted at `root` (created lazily on first write).
    pub fn new(root: impl Into<PathBuf>) -> DiskCache {
        DiskCache {
            root: Some(root.into()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            race_lost: AtomicU64::new(0),
        }
    }

    /// A disabled cache: every `get` misses, every `put` is dropped.
    pub fn disabled() -> DiskCache {
        DiskCache {
            root: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            race_lost: AtomicU64::new(0),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.root.is_some()
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Writes whose target already existed when the rename landed: another
    /// writer of the same key got there first.  Contents are a pure
    /// function of the key, so losing the race is harmless — the counter
    /// exists so the server's dedup efficacy is observable (a hot daemon
    /// should keep this near zero; every increment is a duplicated
    /// computation the in-flight dedup layer failed to coalesce).
    pub fn race_lost(&self) -> u64 {
        self.race_lost.load(Ordering::Relaxed)
    }

    fn path_for_ext(&self, key: &str, ext: &str) -> Option<PathBuf> {
        let root = self.root.as_ref()?;
        // Shard on the first two digest characters to keep directories small.
        let digest = key.rsplit('-').next().unwrap_or(key);
        let shard = digest.get(0..2).unwrap_or("xx");
        Some(root.join(shard).join(format!("{key}.{ext}")))
    }

    fn path_for(&self, key: &str) -> Option<PathBuf> {
        self.path_for_ext(key, "json")
    }

    /// Look up a key, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<String> {
        let path = self.path_for(key)?;
        match std::fs::read_to_string(&path) {
            Ok(s) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(s)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a value.  I/O failures are non-fatal (the cache is an
    /// accelerator, not a source of truth) but reported on stderr.
    pub fn put(&self, key: &str, contents: &str) {
        let Some(path) = self.path_for(key) else {
            return;
        };
        match write_atomic(&path, contents.as_bytes()) {
            Ok(raced) => {
                if raced {
                    self.race_lost.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) => crate::log::warn(
                "cache.write_failed",
                &[
                    ("path", crate::json::Json::str(path.display().to_string())),
                    ("error", crate::json::Json::str(e.to_string())),
                ],
            ),
        }
    }

    /// Raw lookup for serving entries to a peer daemon: tries the `.json`
    /// form first, then `.bin`, and touches **no** hit/miss counters — a
    /// peer probing for keys it may not have must not skew the local
    /// cache-efficacy numbers.
    pub fn peek(&self, key: &str) -> Option<Vec<u8>> {
        let json = self.path_for(key)?;
        if let Ok(b) = std::fs::read(&json) {
            return Some(b);
        }
        std::fs::read(self.path_for_ext(key, "bin")?).ok()
    }

    /// Look up a binary blob (`.bin` entries — trace files), counting the
    /// hit or miss on the shared counters.
    pub fn get_bytes(&self, key: &str) -> Option<Vec<u8>> {
        let path = self.path_for_ext(key, "bin")?;
        match std::fs::read(&path) {
            Ok(b) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(b)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a binary blob under `<key>.bin`; failures are non-fatal.
    pub fn put_bytes(&self, key: &str, contents: &[u8]) {
        let Some(path) = self.path_for_ext(key, "bin") else {
            return;
        };
        match write_atomic(&path, contents) {
            Ok(raced) => {
                if raced {
                    self.race_lost.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) => crate::log::warn(
                "cache.write_failed",
                &[
                    ("path", crate::json::Json::str(path.display().to_string())),
                    ("error", crate::json::Json::str(e.to_string())),
                ],
            ),
        }
    }

    /// Evict oldest-first binary blobs until their total size is at most
    /// `max_total_bytes`.  JSON stage entries are tiny and never evicted;
    /// trace blobs are the only entries that can grow without bound (one
    /// per distinct program text × scale).  Returns the bytes deleted.
    pub fn gc_blobs(&self, max_total_bytes: u64) -> u64 {
        let Some(root) = self.root.as_ref() else {
            return 0;
        };
        let mut blobs: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
        let Ok(shards) = std::fs::read_dir(root) else {
            return 0;
        };
        for shard in shards.flatten() {
            let Ok(files) = std::fs::read_dir(shard.path()) else {
                continue;
            };
            for f in files.flatten() {
                let path = f.path();
                if path.extension().is_none_or(|e| e != "bin") {
                    continue;
                }
                if let Ok(meta) = f.metadata() {
                    let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                    blobs.push((mtime, meta.len(), path));
                }
            }
        }
        let mut total: u64 = blobs.iter().map(|b| b.1).sum();
        if total <= max_total_bytes {
            return 0;
        }
        blobs.sort(); // oldest mtime first; path breaks ties deterministically
        let mut deleted = 0u64;
        for (_, size, path) in blobs {
            if total <= max_total_bytes {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= size;
                deleted += size;
            }
        }
        deleted
    }
}

/// Write `contents` to `path` via a unique temp file + rename, so readers
/// can never observe a torn entry.  Returns whether the target already
/// existed just before the rename landed — i.e. whether some other writer
/// of the same key won the race (contents are a pure function of the key,
/// so last-writer-wins is identical either way; the flag only feeds the
/// `race_lost` counter).
fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<bool> {
    let dir = path.parent().expect("cache path has a parent");
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, contents)?;
    let raced = path.exists();
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(raced),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("guardspec-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn get_put_get() {
        let root = scratch_dir("basic");
        let c = DiskCache::new(&root);
        assert_eq!(c.get("profile-aabbcc"), None);
        c.put("profile-aabbcc", "{\"x\":1}");
        assert_eq!(c.get("profile-aabbcc").as_deref(), Some("{\"x\":1}"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        // Sharded under the digest prefix.
        assert!(root.join("aa").join("profile-aabbcc.json").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn byte_blobs_roundtrip_beside_json() {
        let root = scratch_dir("bytes");
        let c = DiskCache::new(&root);
        assert_eq!(c.get_bytes("trace-ddeeff"), None);
        c.put_bytes("trace-ddeeff", &[1, 2, 0xff]);
        assert_eq!(
            c.get_bytes("trace-ddeeff").as_deref(),
            Some(&[1, 2, 0xff][..])
        );
        // Same key space, different extension: no collision with JSON.
        c.put("trace-ddeeff", "{}");
        assert_eq!(c.get("trace-ddeeff").as_deref(), Some("{}"));
        assert_eq!(
            c.get_bytes("trace-ddeeff").as_deref(),
            Some(&[1, 2, 0xff][..])
        );
        assert!(root.join("dd").join("trace-ddeeff.bin").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_caps_blob_bytes_oldest_first_and_spares_json() {
        let root = scratch_dir("gc");
        let c = DiskCache::new(&root);
        c.put("sim-aa11", "{\"kept\":true}");
        for (i, key) in ["trace-00aa", "trace-11bb", "trace-22cc"]
            .iter()
            .enumerate()
        {
            c.put_bytes(key, &vec![0u8; 1000]);
            // Distinct mtimes so eviction order is the write order.
            let path = root.join(&key[6..8]).join(format!("{key}.bin"));
            let t =
                std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1000 + i as u64);
            let f = std::fs::File::open(&path).unwrap();
            f.set_modified(t).unwrap();
        }
        // Cap at 2 blobs' worth: the oldest one goes.
        assert_eq!(c.gc_blobs(2000), 1000);
        assert_eq!(c.get_bytes("trace-00aa"), None);
        assert!(c.get_bytes("trace-11bb").is_some());
        assert!(c.get_bytes("trace-22cc").is_some());
        assert!(
            c.get("sim-aa11").is_some(),
            "JSON entries are never evicted"
        );
        // Under the cap: nothing further deleted.
        assert_eq!(c.gc_blobs(2000), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn peek_reads_both_forms_without_counting() {
        let root = scratch_dir("peek");
        let c = DiskCache::new(&root);
        assert_eq!(c.peek("sim-0011"), None);
        c.put("sim-0011", "{\"v\":1}");
        c.put_bytes("trace-2233", &[9, 8, 7]);
        assert_eq!(c.peek("sim-0011").as_deref(), Some(&b"{\"v\":1}"[..]));
        assert_eq!(c.peek("trace-2233").as_deref(), Some(&[9, 8, 7][..]));
        assert_eq!((c.hits(), c.misses()), (0, 0), "peek must not count");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let c = DiskCache::disabled();
        c.put("k", "v");
        assert_eq!(c.get("k"), None);
        assert!(!c.is_enabled());
    }

    #[test]
    fn second_writer_of_same_key_counts_race_lost() {
        let root = scratch_dir("race-seq");
        let c = DiskCache::new(&root);
        c.put("sim-beef00", "{\"v\":1}");
        assert_eq!(c.race_lost(), 0, "first write has no one to race");
        c.put("sim-beef00", "{\"v\":1}");
        assert_eq!(c.race_lost(), 1, "overwrite means someone got there first");
        // Different key: no race.
        c.put_bytes("trace-cafe00", &[1]);
        assert_eq!(c.race_lost(), 1);
        c.put_bytes("trace-cafe00", &[1]);
        assert_eq!(c.race_lost(), 2, "blob writes share the counter");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_same_key_puts_never_tear_the_entry() {
        // Two threads racing hammer the same key; every intermediate read
        // must see one of the two complete payloads — never a torn mix —
        // and the final entry must be intact.  This is the server path:
        // concurrent requests that slipped past in-flight dedup (e.g. one
        // arrived after the flight published) both write their results.
        let root = scratch_dir("race-thr");
        let c = std::sync::Arc::new(DiskCache::new(&root));
        let payload = "x".repeat(64 * 1024); // big enough to tear if unbuffered
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = c.clone();
            let payload = payload.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    c.put("sim-feed01", &payload);
                }
            }));
        }
        let reader = {
            let c = c.clone();
            let payload = payload.clone();
            std::thread::spawn(move || {
                let mut seen = 0u32;
                while seen < 20 {
                    if let Some(got) = c.get("sim-feed01") {
                        assert_eq!(got, payload, "reader observed a torn entry");
                        seen += 1;
                    }
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(c.get("sim-feed01").as_deref(), Some(payload.as_str()));
        assert!(
            c.race_lost() >= 1,
            "100 same-key writes must have raced at least once"
        );
        // No temp droppings left behind.
        let shard = root.join("fe");
        let leftovers: Vec<_> = std::fs::read_dir(&shard)
            .unwrap()
            .flatten()
            .filter(|f| f.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&root);
    }
}
