//! Content-addressed on-disk result store.
//!
//! Layout (under the root, conventionally `results/cache/`):
//!
//! ```text
//! results/cache/<first two hex chars>/<stage>-<32-hex-digest>.json
//! ```
//!
//! Keys come from [`crate::key`]; values are the JSON encodings from
//! [`crate::codec`].  Writes go through a temp file + rename so concurrent
//! writers of the same key (two worker threads, or two bench binaries
//! running at once) can never expose a torn entry — last writer wins with
//! identical contents, since contents are a pure function of the key.
//!
//! Hit/miss counters are atomic and feed the run artifact, which is how the
//! acceptance criterion "a warm run performs zero re-profiles/re-simulations"
//! is made observable.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug)]
pub struct DiskCache {
    root: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl DiskCache {
    /// A cache rooted at `root` (created lazily on first write).
    pub fn new(root: impl Into<PathBuf>) -> DiskCache {
        DiskCache {
            root: Some(root.into()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A disabled cache: every `get` misses, every `put` is dropped.
    pub fn disabled() -> DiskCache {
        DiskCache {
            root: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.root.is_some()
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn path_for(&self, key: &str) -> Option<PathBuf> {
        let root = self.root.as_ref()?;
        // Shard on the first two digest characters to keep directories small.
        let digest = key.rsplit('-').next().unwrap_or(key);
        let shard = digest.get(0..2).unwrap_or("xx");
        Some(root.join(shard).join(format!("{key}.json")))
    }

    /// Look up a key, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<String> {
        let path = self.path_for(key)?;
        match std::fs::read_to_string(&path) {
            Ok(s) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(s)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a value.  I/O failures are non-fatal (the cache is an
    /// accelerator, not a source of truth) but reported on stderr.
    pub fn put(&self, key: &str, contents: &str) {
        let Some(path) = self.path_for(key) else {
            return;
        };
        if let Err(e) = write_atomic(&path, contents) {
            eprintln!(
                "guardspec-harness: cache write {} failed: {e}",
                path.display()
            );
        }
    }
}

fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let dir = path.parent().expect("cache path has a parent");
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("guardspec-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn get_put_get() {
        let root = scratch_dir("basic");
        let c = DiskCache::new(&root);
        assert_eq!(c.get("profile-aabbcc"), None);
        c.put("profile-aabbcc", "{\"x\":1}");
        assert_eq!(c.get("profile-aabbcc").as_deref(), Some("{\"x\":1}"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        // Sharded under the digest prefix.
        assert!(root.join("aa").join("profile-aabbcc.json").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let c = DiskCache::disabled();
        c.put("k", "v");
        assert_eq!(c.get("k"), None);
        assert!(!c.is_enabled());
    }
}
