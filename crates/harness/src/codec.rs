//! JSON encodings for cached stage outputs.
//!
//! * [`Profile`] — counters plus per-site branch-outcome bit vectors; packed
//!   words are hex strings so full-range `u64` bit patterns survive exactly.
//! * [`SimStats`] — via the `field_list`/`set_field` hooks on the stats
//!   struct itself, so a field added upstream shows up here automatically.
//! * [`ReportSummary`] — the transform-report counts the tables print
//!   (full per-branch decision lists are cheap to recompute and are *not*
//!   cached).
//! * Transformed programs — as printed IR text, re-parsed on a warm hit
//!   (print → parse identity is property-tested in `guardspec-ir`).
//!
//! Decoders return `Err` on any shape mismatch; callers treat that as a
//! cache miss and recompute, so a stale or corrupt entry can never poison a
//! run.

use crate::json::Json;
use guardspec_core::TransformReport;
use guardspec_interp::profile::BranchProfile;
use guardspec_interp::{BitVec, Profile};
use guardspec_ir::{BlockId, FuncId, InsnRef};
use guardspec_sim::SimStats;

/// The per-transform counts reported in tables (a cache-friendly subset of
/// [`TransformReport`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReportSummary {
    pub likelies: usize,
    pub ifconversions: usize,
    pub splits: usize,
    pub speculated_ops: usize,
    pub guarded_ops: usize,
    pub split_likelies: usize,
}

impl From<&TransformReport> for ReportSummary {
    fn from(r: &TransformReport) -> ReportSummary {
        ReportSummary {
            likelies: r.likelies,
            ifconversions: r.ifconversions,
            splits: r.splits,
            speculated_ops: r.speculated_ops,
            guarded_ops: r.guarded_ops,
            split_likelies: r.split_likelies,
        }
    }
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid field {key}"))
}

fn get_usize(j: &Json, key: &str) -> Result<usize, String> {
    Ok(get_u64(j, key)? as usize)
}

pub fn report_to_json(r: &ReportSummary) -> Json {
    Json::obj(vec![
        ("likelies", Json::U64(r.likelies as u64)),
        ("ifconversions", Json::U64(r.ifconversions as u64)),
        ("splits", Json::U64(r.splits as u64)),
        ("speculated_ops", Json::U64(r.speculated_ops as u64)),
        ("guarded_ops", Json::U64(r.guarded_ops as u64)),
        ("split_likelies", Json::U64(r.split_likelies as u64)),
    ])
}

pub fn report_from_json(j: &Json) -> Result<ReportSummary, String> {
    Ok(ReportSummary {
        likelies: get_usize(j, "likelies")?,
        ifconversions: get_usize(j, "ifconversions")?,
        splits: get_usize(j, "splits")?,
        speculated_ops: get_usize(j, "speculated_ops")?,
        guarded_ops: get_usize(j, "guarded_ops")?,
        split_likelies: get_usize(j, "split_likelies")?,
    })
}

pub fn stats_to_json(s: &SimStats) -> Json {
    Json::Obj(
        s.field_list()
            .into_iter()
            .map(|(k, v)| (k, Json::U64(v)))
            .collect(),
    )
}

pub fn stats_from_json(j: &Json) -> Result<SimStats, String> {
    let Json::Obj(pairs) = j else {
        return Err("stats: not an object".to_string());
    };
    let mut s = SimStats::default();
    let mut set = 0usize;
    for (k, v) in pairs {
        let v = v
            .as_u64()
            .ok_or_else(|| format!("stats field {k}: not a u64"))?;
        if !s.set_field(k, v) {
            return Err(format!("stats: unknown field {k}"));
        }
        set += 1;
    }
    // Reject entries from an older SimStats shape (missing counters would
    // silently read as zero otherwise).
    if set != s.field_list().len() {
        return Err(format!(
            "stats: {set} fields, expected {}",
            s.field_list().len()
        ));
    }
    Ok(s)
}

fn bitvec_to_json(v: &BitVec) -> Json {
    Json::obj(vec![
        ("len", Json::U64(v.len() as u64)),
        (
            "words",
            Json::Arr(
                v.words()
                    .iter()
                    .map(|w| Json::str(format!("{w:016x}")))
                    .collect(),
            ),
        ),
    ])
}

fn bitvec_from_json(j: &Json) -> Result<BitVec, String> {
    let len = get_usize(j, "len")?;
    let words = j
        .get("words")
        .and_then(Json::as_arr)
        .ok_or("bitvec: missing words")?
        .iter()
        .map(|w| {
            w.as_str()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| "bitvec: bad word".to_string())
        })
        .collect::<Result<Vec<u64>, String>>()?;
    if len > words.len() * 64 {
        return Err("bitvec: length exceeds words".to_string());
    }
    Ok(BitVec::from_raw(words, len))
}

pub fn profile_to_json(p: &Profile) -> Json {
    let branches = p
        .branches()
        .map(|(site, bp)| {
            Json::obj(vec![
                ("func", Json::U64(site.func.0 as u64)),
                ("block", Json::U64(site.block.0 as u64)),
                ("idx", Json::U64(site.idx as u64)),
                ("executed", Json::U64(bp.executed)),
                ("taken", Json::U64(bp.taken)),
                ("outcomes", bitvec_to_json(&bp.outcomes)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("retired", Json::U64(p.retired)),
        ("annulled", Json::U64(p.annulled)),
        (
            "by_class",
            Json::Arr(p.by_class.iter().map(|&v| Json::U64(v)).collect()),
        ),
        (
            "site_counts",
            Json::Arr(p.site_counts.iter().map(|&v| Json::U64(v)).collect()),
        ),
        ("branches", Json::Arr(branches)),
    ])
}

pub fn profile_from_json(j: &Json) -> Result<Profile, String> {
    let u64_arr = |key: &str| -> Result<Vec<u64>, String> {
        j.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("profile: missing {key}"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("profile: bad {key} entry"))
            })
            .collect()
    };
    let by_class_v = u64_arr("by_class")?;
    let mut by_class = [0u64; 8];
    if by_class_v.len() != 8 {
        return Err("profile: by_class length".to_string());
    }
    by_class.copy_from_slice(&by_class_v);

    let mut branches = Vec::new();
    for b in j
        .get("branches")
        .and_then(Json::as_arr)
        .ok_or("profile: missing branches")?
    {
        let site = InsnRef {
            func: FuncId(get_u64(b, "func")? as u32),
            block: BlockId(get_u64(b, "block")? as u32),
            idx: get_u64(b, "idx")? as u32,
        };
        let outcomes = bitvec_from_json(
            b.get("outcomes")
                .ok_or("profile: branch missing outcomes")?,
        )?;
        branches.push((
            site,
            BranchProfile {
                executed: get_u64(b, "executed")?,
                taken: get_u64(b, "taken")?,
                outcomes,
            },
        ));
    }
    Ok(Profile::from_branch_pairs(
        u64_arr("site_counts")?,
        branches,
        get_u64(j, "retired")?,
        by_class,
        get_u64(j, "annulled")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn stats_roundtrip_through_text() {
        let mut s = SimStats::default();
        s.cycles = 123_456_789_012;
        s.committed = 99;
        s.queue_full_cycles = [1, 2, 3, 4];
        s.fu_issues[5] = 7;
        s.dcache_misses = 13;
        let text = stats_to_json(&s).to_pretty();
        let back = stats_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn stats_rejects_incomplete_entries() {
        assert!(stats_from_json(&parse("{\"cycles\":1}").unwrap()).is_err());
        assert!(stats_from_json(&parse("{\"bogus\":1}").unwrap()).is_err());
    }

    #[test]
    fn profile_roundtrip_preserves_outcome_bits() {
        let mut bp = BranchProfile::default();
        for i in 0..131 {
            bp.outcomes.push(i % 3 == 0);
        }
        bp.executed = 131;
        bp.taken = bp.outcomes.count_ones() as u64;
        let site = InsnRef {
            func: FuncId(0),
            block: BlockId(4),
            idx: 2,
        };
        let p = Profile::from_branch_pairs(
            vec![5, 0, 9],
            vec![(site, bp.clone())],
            1000,
            [1, 2, 3, 4, 5, 6, 7, 8],
            3,
        );
        let text = profile_to_json(&p).to_compact();
        let back = profile_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.retired, p.retired);
        assert_eq!(back.site_counts, p.site_counts);
        assert_eq!(back.by_class, p.by_class);
        assert_eq!(back.branch(site).unwrap().outcomes, bp.outcomes);
    }

    #[test]
    fn report_roundtrip() {
        let r = ReportSummary {
            likelies: 1,
            ifconversions: 2,
            splits: 3,
            speculated_ops: 4,
            guarded_ops: 5,
            split_likelies: 6,
        };
        let back = report_from_json(&parse(&report_to_json(&r).to_compact()).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
