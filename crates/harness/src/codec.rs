//! JSON encodings for cached stage outputs.
//!
//! * [`Profile`] — counters plus per-site branch-outcome bit vectors; packed
//!   words are hex strings so full-range `u64` bit patterns survive exactly.
//! * [`SimStats`] — via the `field_list`/`set_field` hooks on the stats
//!   struct itself, so a field added upstream shows up here automatically.
//! * [`ReportSummary`] — the transform-report counts the tables print
//!   (full per-branch decision lists are cheap to recompute and are *not*
//!   cached).
//! * Transformed programs — as printed IR text, re-parsed on a warm hit
//!   (print → parse identity is property-tested in `guardspec-ir`).
//!
//! Decoders return `Err` on any shape mismatch; callers treat that as a
//! cache miss and recompute, so a stale or corrupt entry can never poison a
//! run.

use crate::json::Json;
use guardspec_core::{Decision, TransformReport};
use guardspec_interp::profile::BranchProfile;
use guardspec_interp::{BitVec, Profile};
use guardspec_ir::{BlockId, FuncId, InsnRef};
use guardspec_sim::{CycleAccounting, CycleBucket, SampleSummary, SimStats, SiteCounters};

/// One branch decision of the Figure-6 driver, in cache/artifact form.
///
/// Floats are stored *pre-formatted* (the exact strings `Decision::log_line`
/// prints) so the JSON round-trip is byte-exact, `Eq` stays derivable, and a
/// warm cache hit reproduces the decision log byte-for-byte.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecisionSummary {
    pub func: u32,
    pub block: u32,
    pub idx: u32,
    pub backward: bool,
    pub executed: u64,
    /// `{:.4}`-formatted taken rate.
    pub taken_rate: String,
    /// [`guardspec_core::BranchBehavior`] tag, e.g. `monotonic(rate=…)`.
    pub behavior: String,
    /// `{:.2}`-formatted estimated benefit, or `-` when no gate ran.
    pub benefit: String,
    /// `{:.2}`-formatted estimated cost, or `-` when no gate ran.
    pub cost: String,
    /// [`guardspec_core::Action`] tag, e.g. `split-branch(likelies=3)`.
    pub action: String,
    pub reason: String,
}

impl From<&Decision> for DecisionSummary {
    fn from(d: &Decision) -> DecisionSummary {
        let (benefit, cost) = d
            .cost
            .map(|c| (format!("{:.2}", c.benefit), format!("{:.2}", c.cost)))
            .unwrap_or_else(|| ("-".to_string(), "-".to_string()));
        DecisionSummary {
            func: d.func.0,
            block: d.site.block.0,
            idx: d.site.idx,
            backward: d.backward,
            executed: d.executed,
            taken_rate: format!("{:.4}", d.taken_rate),
            behavior: d.behavior.tag(),
            benefit,
            cost,
            action: d.action.tag(),
            reason: d.reason().to_string(),
        }
    }
}

impl DecisionSummary {
    /// The same deterministic line [`Decision::log_line`] prints — warm
    /// (cached) and cold runs emit identical logs.
    pub fn log_line(&self) -> String {
        format!(
            "func={} block={} idx={} dir={} executed={} taken_rate={} behavior={} benefit={} cost={} action={} reason={}",
            self.func,
            self.block,
            self.idx,
            if self.backward { "back" } else { "fwd" },
            self.executed,
            self.taken_rate,
            self.behavior,
            self.benefit,
            self.cost,
            self.action,
            self.reason,
        )
    }
}

/// The per-transform counts reported in tables plus the full Figure-6
/// decision log (a cache-friendly subset of [`TransformReport`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReportSummary {
    pub likelies: usize,
    pub ifconversions: usize,
    pub splits: usize,
    pub speculated_ops: usize,
    pub guarded_ops: usize,
    pub split_likelies: usize,
    /// One entry per loop branch the driver visited, in visit order.
    pub decisions: Vec<DecisionSummary>,
}

impl From<&TransformReport> for ReportSummary {
    fn from(r: &TransformReport) -> ReportSummary {
        ReportSummary {
            likelies: r.likelies,
            ifconversions: r.ifconversions,
            splits: r.splits,
            speculated_ops: r.speculated_ops,
            guarded_ops: r.guarded_ops,
            split_likelies: r.split_likelies,
            decisions: r.decisions.iter().map(DecisionSummary::from).collect(),
        }
    }
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid field {key}"))
}

fn get_usize(j: &Json, key: &str) -> Result<usize, String> {
    Ok(get_u64(j, key)? as usize)
}

fn get_str(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing/invalid field {key}"))
}

fn get_bool(j: &Json, key: &str) -> Result<bool, String> {
    j.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing/invalid field {key}"))
}

fn decision_to_json(d: &DecisionSummary) -> Json {
    Json::obj(vec![
        ("func", Json::U64(d.func as u64)),
        ("block", Json::U64(d.block as u64)),
        ("idx", Json::U64(d.idx as u64)),
        ("backward", Json::Bool(d.backward)),
        ("executed", Json::U64(d.executed)),
        ("taken_rate", Json::str(&d.taken_rate)),
        ("behavior", Json::str(&d.behavior)),
        ("benefit", Json::str(&d.benefit)),
        ("cost", Json::str(&d.cost)),
        ("action", Json::str(&d.action)),
        ("reason", Json::str(&d.reason)),
    ])
}

fn decision_from_json(j: &Json) -> Result<DecisionSummary, String> {
    Ok(DecisionSummary {
        func: get_u64(j, "func")? as u32,
        block: get_u64(j, "block")? as u32,
        idx: get_u64(j, "idx")? as u32,
        backward: get_bool(j, "backward")?,
        executed: get_u64(j, "executed")?,
        taken_rate: get_str(j, "taken_rate")?,
        behavior: get_str(j, "behavior")?,
        benefit: get_str(j, "benefit")?,
        cost: get_str(j, "cost")?,
        action: get_str(j, "action")?,
        reason: get_str(j, "reason")?,
    })
}

pub fn report_to_json(r: &ReportSummary) -> Json {
    Json::obj(vec![
        ("likelies", Json::U64(r.likelies as u64)),
        ("ifconversions", Json::U64(r.ifconversions as u64)),
        ("splits", Json::U64(r.splits as u64)),
        ("speculated_ops", Json::U64(r.speculated_ops as u64)),
        ("guarded_ops", Json::U64(r.guarded_ops as u64)),
        ("split_likelies", Json::U64(r.split_likelies as u64)),
        (
            "decisions",
            Json::Arr(r.decisions.iter().map(decision_to_json).collect()),
        ),
    ])
}

pub fn report_from_json(j: &Json) -> Result<ReportSummary, String> {
    // Entries predating the decision log lack "decisions"; the error turns
    // them into benign cache misses that recompute with the log attached.
    let decisions = j
        .get("decisions")
        .and_then(Json::as_arr)
        .ok_or("report: missing decisions")?
        .iter()
        .map(decision_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ReportSummary {
        likelies: get_usize(j, "likelies")?,
        ifconversions: get_usize(j, "ifconversions")?,
        splits: get_usize(j, "splits")?,
        speculated_ops: get_usize(j, "speculated_ops")?,
        guarded_ops: get_usize(j, "guarded_ops")?,
        split_likelies: get_usize(j, "split_likelies")?,
        decisions,
    })
}

/// Cycle accounting as JSON: buckets by name (exhaustive), site count, and
/// the sparse list of sites with any activity.
pub fn accounting_to_json(a: &CycleAccounting) -> Json {
    let buckets = CycleBucket::ALL
        .into_iter()
        .map(|b| (b.name(), Json::U64(a.bucket(b))))
        .collect();
    let sites = a
        .nonzero_sites()
        .map(|(id, s)| {
            Json::obj(vec![
                ("id", Json::U64(id as u64)),
                ("executions", Json::U64(s.executions)),
                ("mispredicts", Json::U64(s.mispredicts)),
                ("likely_mispredicts", Json::U64(s.likely_mispredicts)),
                ("recovery_cycles", Json::U64(s.recovery_cycles)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("buckets", Json::obj(buckets)),
        ("num_sites", Json::U64(a.num_sites() as u64)),
        ("sites", Json::Arr(sites)),
    ])
}

pub fn accounting_from_json(j: &Json) -> Result<CycleAccounting, String> {
    let bj = j.get("buckets").ok_or("accounting: missing buckets")?;
    let Json::Obj(pairs) = bj else {
        return Err("accounting: buckets not an object".to_string());
    };
    if pairs.len() != CycleBucket::COUNT {
        return Err(format!(
            "accounting: {} buckets, expected {}",
            pairs.len(),
            CycleBucket::COUNT
        ));
    }
    let mut buckets = [0u64; CycleBucket::COUNT];
    for (k, v) in pairs {
        let b = CycleBucket::from_name(k).ok_or_else(|| format!("accounting: bad bucket {k}"))?;
        buckets[b.index()] = v.as_u64().ok_or("accounting: bad bucket value")?;
    }
    let num_sites = get_usize(j, "num_sites")?;
    let mut nonzero = Vec::new();
    for s in j
        .get("sites")
        .and_then(Json::as_arr)
        .ok_or("accounting: missing sites")?
    {
        let id = get_u64(s, "id")? as u32;
        if id as usize >= num_sites {
            return Err("accounting: site id out of range".to_string());
        }
        nonzero.push((
            id,
            SiteCounters {
                executions: get_u64(s, "executions")?,
                mispredicts: get_u64(s, "mispredicts")?,
                likely_mispredicts: get_u64(s, "likely_mispredicts")?,
                recovery_cycles: get_u64(s, "recovery_cycles")?,
            },
        ));
    }
    Ok(CycleAccounting::from_parts(buckets, num_sites, nonzero))
}

/// Sampled-run estimate as JSON.  The float fields (mean IPC and its CI
/// half-width) are stored as `f64` **bit patterns** so the cache
/// round-trip is exact: a warm hit reproduces the cold run's stable
/// artifact byte-for-byte.
pub fn sample_to_json(s: &SampleSummary) -> Json {
    Json::obj(vec![
        ("windows", Json::U64(s.windows)),
        ("detail", Json::U64(s.detail)),
        ("warmup", Json::U64(s.warmup)),
        ("interval", Json::U64(s.interval)),
        ("measured_entries", Json::U64(s.measured_entries)),
        ("total_entries", Json::U64(s.total_entries)),
        (
            "ipc_mean_bits",
            Json::str(format!("{:016x}", s.ipc_mean.to_bits())),
        ),
        (
            "ipc_ci95_bits",
            Json::str(format!("{:016x}", s.ipc_ci95.to_bits())),
        ),
        ("est_cycles", Json::U64(s.est_cycles)),
    ])
}

fn get_f64_bits(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .map(f64::from_bits)
        .ok_or_else(|| format!("missing/invalid field {key}"))
}

pub fn sample_from_json(j: &Json) -> Result<SampleSummary, String> {
    Ok(SampleSummary {
        windows: get_u64(j, "windows")?,
        detail: get_u64(j, "detail")?,
        warmup: get_u64(j, "warmup")?,
        interval: get_u64(j, "interval")?,
        measured_entries: get_u64(j, "measured_entries")?,
        total_entries: get_u64(j, "total_entries")?,
        ipc_mean: get_f64_bits(j, "ipc_mean_bits")?,
        ipc_ci95: get_f64_bits(j, "ipc_ci95_bits")?,
        est_cycles: get_u64(j, "est_cycles")?,
    })
}

/// Hex encoding for the binary IR form embedded in transform cache entries
/// (one lowercase `%08x` group per `encode_program` word).
pub fn words_to_hex(words: &[u32]) -> String {
    let mut out = String::with_capacity(words.len() * 8);
    for w in words {
        use std::fmt::Write as _;
        let _ = write!(out, "{w:08x}");
    }
    out
}

pub fn words_from_hex(s: &str) -> Result<Vec<u32>, String> {
    if !s.len().is_multiple_of(8) || !s.is_ascii() {
        return Err("bin: bad hex length".to_string());
    }
    s.as_bytes()
        .chunks(8)
        .map(|c| {
            u32::from_str_radix(std::str::from_utf8(c).map_err(|e| e.to_string())?, 16)
                .map_err(|e| e.to_string())
        })
        .collect()
}

pub fn stats_to_json(s: &SimStats) -> Json {
    Json::Obj(
        s.field_list()
            .into_iter()
            .map(|(k, v)| (k, Json::U64(v)))
            .collect(),
    )
}

pub fn stats_from_json(j: &Json) -> Result<SimStats, String> {
    let Json::Obj(pairs) = j else {
        return Err("stats: not an object".to_string());
    };
    let mut s = SimStats::default();
    let mut set = 0usize;
    for (k, v) in pairs {
        let v = v
            .as_u64()
            .ok_or_else(|| format!("stats field {k}: not a u64"))?;
        if !s.set_field(k, v) {
            return Err(format!("stats: unknown field {k}"));
        }
        set += 1;
    }
    // Reject entries from an older SimStats shape (missing counters would
    // silently read as zero otherwise).
    if set != s.field_list().len() {
        return Err(format!(
            "stats: {set} fields, expected {}",
            s.field_list().len()
        ));
    }
    Ok(s)
}

fn bitvec_to_json(v: &BitVec) -> Json {
    Json::obj(vec![
        ("len", Json::U64(v.len() as u64)),
        (
            "words",
            Json::Arr(
                v.words()
                    .iter()
                    .map(|w| Json::str(format!("{w:016x}")))
                    .collect(),
            ),
        ),
    ])
}

fn bitvec_from_json(j: &Json) -> Result<BitVec, String> {
    let len = get_usize(j, "len")?;
    let words = j
        .get("words")
        .and_then(Json::as_arr)
        .ok_or("bitvec: missing words")?
        .iter()
        .map(|w| {
            w.as_str()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| "bitvec: bad word".to_string())
        })
        .collect::<Result<Vec<u64>, String>>()?;
    if len > words.len() * 64 {
        return Err("bitvec: length exceeds words".to_string());
    }
    Ok(BitVec::from_raw(words, len))
}

pub fn profile_to_json(p: &Profile) -> Json {
    let branches = p
        .branches()
        .map(|(site, bp)| {
            Json::obj(vec![
                ("func", Json::U64(site.func.0 as u64)),
                ("block", Json::U64(site.block.0 as u64)),
                ("idx", Json::U64(site.idx as u64)),
                ("executed", Json::U64(bp.executed)),
                ("taken", Json::U64(bp.taken)),
                ("outcomes", bitvec_to_json(&bp.outcomes)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("retired", Json::U64(p.retired)),
        ("annulled", Json::U64(p.annulled)),
        (
            "by_class",
            Json::Arr(p.by_class.iter().map(|&v| Json::U64(v)).collect()),
        ),
        (
            "site_counts",
            Json::Arr(p.site_counts.iter().map(|&v| Json::U64(v)).collect()),
        ),
        ("branches", Json::Arr(branches)),
    ])
}

pub fn profile_from_json(j: &Json) -> Result<Profile, String> {
    let u64_arr = |key: &str| -> Result<Vec<u64>, String> {
        j.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("profile: missing {key}"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("profile: bad {key} entry"))
            })
            .collect()
    };
    let by_class_v = u64_arr("by_class")?;
    let mut by_class = [0u64; 8];
    if by_class_v.len() != 8 {
        return Err("profile: by_class length".to_string());
    }
    by_class.copy_from_slice(&by_class_v);

    let mut branches = Vec::new();
    for b in j
        .get("branches")
        .and_then(Json::as_arr)
        .ok_or("profile: missing branches")?
    {
        let site = InsnRef {
            func: FuncId(get_u64(b, "func")? as u32),
            block: BlockId(get_u64(b, "block")? as u32),
            idx: get_u64(b, "idx")? as u32,
        };
        let outcomes = bitvec_from_json(
            b.get("outcomes")
                .ok_or("profile: branch missing outcomes")?,
        )?;
        branches.push((
            site,
            BranchProfile {
                executed: get_u64(b, "executed")?,
                taken: get_u64(b, "taken")?,
                outcomes,
            },
        ));
    }
    Ok(Profile::from_branch_pairs(
        u64_arr("site_counts")?,
        branches,
        get_u64(j, "retired")?,
        by_class,
        get_u64(j, "annulled")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn stats_roundtrip_through_text() {
        let mut s = SimStats {
            cycles: 123_456_789_012,
            committed: 99,
            queue_full_cycles: [1, 2, 3, 4],
            dcache_misses: 13,
            ..SimStats::default()
        };
        s.fu_issues[5] = 7;
        let text = stats_to_json(&s).to_pretty();
        let back = stats_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn stats_rejects_incomplete_entries() {
        assert!(stats_from_json(&parse("{\"cycles\":1}").unwrap()).is_err());
        assert!(stats_from_json(&parse("{\"bogus\":1}").unwrap()).is_err());
    }

    #[test]
    fn profile_roundtrip_preserves_outcome_bits() {
        let mut bp = BranchProfile::default();
        for i in 0..131 {
            bp.outcomes.push(i % 3 == 0);
        }
        bp.executed = 131;
        bp.taken = bp.outcomes.count_ones() as u64;
        let site = InsnRef {
            func: FuncId(0),
            block: BlockId(4),
            idx: 2,
        };
        let p = Profile::from_branch_pairs(
            vec![5, 0, 9],
            vec![(site, bp.clone())],
            1000,
            [1, 2, 3, 4, 5, 6, 7, 8],
            3,
        );
        let text = profile_to_json(&p).to_compact();
        let back = profile_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.retired, p.retired);
        assert_eq!(back.site_counts, p.site_counts);
        assert_eq!(back.by_class, p.by_class);
        assert_eq!(back.branch(site).unwrap().outcomes, bp.outcomes);
    }

    #[test]
    fn report_roundtrip() {
        let r = ReportSummary {
            likelies: 1,
            ifconversions: 2,
            splits: 3,
            speculated_ops: 4,
            guarded_ops: 5,
            split_likelies: 6,
            decisions: vec![DecisionSummary {
                func: 0,
                block: 7,
                idx: 2,
                backward: true,
                executed: 4096,
                taken_rate: "0.9850".to_string(),
                behavior: "highly-taken(rate=0.9850)".to_string(),
                benefit: "-".to_string(),
                cost: "-".to_string(),
                action: "branch-likely".to_string(),
                reason: "taken rate above likely threshold".to_string(),
            }],
        };
        let back = report_from_json(&parse(&report_to_json(&r).to_compact()).unwrap()).unwrap();
        assert_eq!(back, r);
        assert!(back.decisions[0]
            .log_line()
            .contains("action=branch-likely"));
    }

    #[test]
    fn report_without_decisions_is_a_miss() {
        // A PR-4-era cache entry: counts only.  Must decode as an error so
        // the harness recomputes instead of reporting an empty log.
        let old = "{\"likelies\":1,\"ifconversions\":0,\"splits\":0,\
                   \"speculated_ops\":0,\"guarded_ops\":0,\"split_likelies\":0}";
        assert!(report_from_json(&parse(old).unwrap())
            .unwrap_err()
            .contains("decisions"));
    }

    #[test]
    fn accounting_roundtrip_preserves_buckets_and_sites() {
        let mut buckets = [0u64; CycleBucket::COUNT];
        buckets[CycleBucket::UsefulCommit.index()] = 1_000_000;
        buckets[CycleBucket::MispredictRecovery.index()] = 123;
        buckets[CycleBucket::Drain.index()] = 7;
        let sites = [
            (
                2u32,
                SiteCounters {
                    executions: 50,
                    mispredicts: 9,
                    likely_mispredicts: 1,
                    recovery_cycles: 123,
                },
            ),
            (
                5u32,
                SiteCounters {
                    executions: 10,
                    mispredicts: 0,
                    likely_mispredicts: 0,
                    recovery_cycles: 0,
                },
            ),
        ];
        let a = CycleAccounting::from_parts(buckets, 9, sites);
        let text = accounting_to_json(&a).to_compact();
        let back = accounting_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.num_sites(), 9);
        assert_eq!(back.site(2).mispredicts, 9);
        // Serialization is canonical: re-encoding the decoded value is
        // byte-identical (artifact determinism depends on this).
        assert_eq!(accounting_to_json(&back).to_compact(), text);
    }

    #[test]
    fn accounting_rejects_malformed_entries() {
        assert!(accounting_from_json(&parse("{}").unwrap()).is_err());
        let missing_bucket = "{\"buckets\":{\"useful_commit\":1},\"num_sites\":0,\"sites\":[]}";
        assert!(accounting_from_json(&parse(missing_bucket).unwrap()).is_err());
    }

    #[test]
    fn sample_summary_roundtrip_is_bit_exact() {
        let s = SampleSummary {
            windows: 17,
            detail: 1000,
            warmup: 500,
            interval: 20_000,
            measured_entries: 17_000,
            total_entries: 345_678,
            ipc_mean: 1.234_567_890_123_456_7,
            ipc_ci95: 0.037_000_000_000_000_004,
            est_cycles: 280_123,
        };
        let text = sample_to_json(&s).to_compact();
        let back = sample_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.ipc_mean.to_bits(), s.ipc_mean.to_bits());
        assert_eq!(back.ipc_ci95.to_bits(), s.ipc_ci95.to_bits());
        // Canonical re-encode (warm artifacts must match cold ones).
        assert_eq!(sample_to_json(&back).to_compact(), text);
        assert!(sample_from_json(&parse("{}").unwrap()).is_err());
    }

    #[test]
    fn words_hex_roundtrip() {
        let words = vec![0u32, 1, 0xdead_beef, u32::MAX];
        let hex = words_to_hex(&words);
        assert_eq!(hex, "0000000000000001deadbeefffffffff");
        assert_eq!(words_from_hex(&hex).unwrap(), words);
        assert!(words_from_hex("123").is_err());
        assert!(words_from_hex("zzzzzzzz").is_err());
    }
}
