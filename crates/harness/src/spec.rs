//! Experiment descriptions: which (workload × transform × scheme × machine)
//! cells an invocation needs.
//!
//! A cell is one column entry of a paper table: simulate `workload` under
//! `scheme`, optionally after transforming it with `transform` options, on
//! machine `cfg`.  The runner expands a spec into a three-stage job pipeline
//! per cell (profile → transform → simulate) and de-duplicates shared
//! stages: one workload's profile is computed once no matter how many cells
//! (or sweep points) consume it, and identical transforms are shared too.

use guardspec_core::DriverOptions;
use guardspec_predict::Scheme;
use guardspec_sim::MachineConfig;
use guardspec_workloads::{all_workloads, Scale, Workload};

/// One table cell to evaluate.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Index into [`ExperimentSpec::workloads`].
    pub workload: usize,
    /// Display label (scheme or preset name, e.g. `"2-bit BP"`, `"proposed"`).
    pub label: String,
    /// Apply the Figure-6 transform with these options before simulating.
    pub transform: Option<DriverOptions>,
    pub scheme: Scheme,
    pub cfg: MachineConfig,
}

/// A batch of cells over a fixed workload set.
pub struct ExperimentSpec {
    /// Artifact name (`BENCH_<n>.json` records it; usually the binary name).
    pub name: String,
    pub scale: Scale,
    pub workloads: Vec<Workload>,
    pub cells: Vec<CellSpec>,
}

impl ExperimentSpec {
    /// A spec with no cells: profiles every workload (Table 1, sweeps 1–2).
    pub fn profiles_only(name: &str, scale: Scale) -> ExperimentSpec {
        ExperimentSpec {
            name: name.to_string(),
            scale,
            workloads: all_workloads(scale),
            cells: Vec::new(),
        }
    }

    /// The Tables 3/4 matrix: every workload under 2-bit BP (original code),
    /// Proposed (transformed code), and perfect BP (original code) — in
    /// exactly the [`Scheme::ALL`] column order the tables print.
    pub fn three_schemes(name: &str, scale: Scale) -> ExperimentSpec {
        let mut spec = ExperimentSpec::profiles_only(name, scale);
        let cfg = MachineConfig::r10000();
        for w in 0..spec.workloads.len() {
            for scheme in Scheme::ALL {
                spec.cells.push(CellSpec {
                    workload: w,
                    label: scheme.label().to_string(),
                    transform: (scheme == Scheme::Proposed).then(DriverOptions::proposed),
                    scheme,
                    cfg: cfg.clone(),
                });
            }
        }
        spec
    }

    /// The ablation matrix: the five driver presets per workload (the
    /// title's individual/combined effects).
    pub fn ablation(name: &str, scale: Scale) -> ExperimentSpec {
        let mut spec = ExperimentSpec::profiles_only(name, scale);
        let cfg = MachineConfig::r10000();
        let presets: [(&str, DriverOptions); 5] = [
            ("baseline", DriverOptions::baseline()),
            ("speculation", DriverOptions::speculation_only()),
            ("guarded", DriverOptions::guarded_only()),
            ("conventional", DriverOptions::conventional()),
            ("proposed", DriverOptions::proposed()),
        ];
        for w in 0..spec.workloads.len() {
            for (label, opts) in &presets {
                spec.cells.push(CellSpec {
                    workload: w,
                    label: label.to_string(),
                    transform: Some(opts.clone()),
                    scheme: if *label == "baseline" {
                        Scheme::TwoBit
                    } else {
                        Scheme::Proposed
                    },
                    cfg: cfg.clone(),
                });
            }
        }
        spec
    }

    /// Append one custom cell (sweep binaries build their matrices this way).
    pub fn push_cell(
        &mut self,
        workload: usize,
        label: impl Into<String>,
        transform: Option<DriverOptions>,
        scheme: Scheme,
        cfg: MachineConfig,
    ) -> usize {
        self.cells.push(CellSpec {
            workload,
            label: label.into(),
            transform,
            scheme,
            cfg,
        });
        self.cells.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_scheme_matrix_shape() {
        let spec = ExperimentSpec::three_schemes("t", Scale::Test);
        assert_eq!(spec.cells.len(), spec.workloads.len() * 3);
        // Column order matches Scheme::ALL for every workload row.
        for (i, cell) in spec.cells.iter().enumerate() {
            assert_eq!(cell.workload, i / 3);
            assert_eq!(cell.scheme, Scheme::ALL[i % 3]);
            assert_eq!(cell.transform.is_some(), cell.scheme == Scheme::Proposed);
        }
    }

    #[test]
    fn ablation_matrix_shape() {
        let spec = ExperimentSpec::ablation("a", Scale::Test);
        assert_eq!(spec.cells.len(), spec.workloads.len() * 5);
        assert!(spec.cells.iter().all(|c| c.transform.is_some()));
        assert_eq!(spec.cells[0].scheme, Scheme::TwoBit); // baseline column
    }
}
