//! Every workload's IR kernel must reproduce its Rust golden model, and the
//! dynamic profiles must show the characteristics the paper describes.

use guardspec_interp::exec::class_index;
use guardspec_interp::profile::profile_program;
use guardspec_interp::run;
use guardspec_ir::validate::assert_valid;
use guardspec_ir::FuClass;
use guardspec_workloads::{all_workloads, Scale};

#[test]
fn workloads_are_valid_programs() {
    for w in all_workloads(Scale::Test) {
        assert_valid(&w.program);
    }
}

#[test]
fn kernels_match_golden_models_at_test_scale() {
    for w in all_workloads(Scale::Test) {
        let res = run(&w.program).unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        let bad = w.verify(&res.machine.mem);
        assert!(bad.is_empty(), "{}: mismatches {bad:?}", w.name);
    }
}

#[test]
fn kernels_match_golden_models_at_small_scale() {
    for w in all_workloads(Scale::Small) {
        let res = run(&w.program).unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        let bad = w.verify(&res.machine.mem);
        assert!(bad.is_empty(), "{}: mismatches {bad:?}", w.name);
    }
}

#[test]
fn branch_fractions_match_table1_ballpark() {
    // Table 1 reports 19-23 % branch instructions; control transfers in our
    // kernels should sit in a generous 10-40 % band.
    for w in all_workloads(Scale::Small) {
        let (profile, _) = profile_program(&w.program).unwrap();
        let frac = profile.branch_fraction();
        assert!(
            (0.10..0.40).contains(&frac),
            "{}: branch fraction {frac:.3} out of band",
            w.name
        );
    }
}

#[test]
fn xlisp_is_dispatch_heavy() {
    let w = guardspec_workloads::xlisp::build(Scale::Test);
    let (profile, _) = profile_program(&w.program).unwrap();
    // Branch-class includes the jtab dispatches: one per VM op.
    let br = profile.by_class[class_index(FuClass::Branch)];
    assert!(
        br > profile.retired / 10,
        "jtab dispatch should dominate control"
    );
}

#[test]
fn compress_inner_branch_is_phased() {
    let w = guardspec_workloads::compress::build(Scale::Small);
    let (profile, _) = profile_program(&w.program).unwrap();
    // Find the `bne r9, r3, emit` site: block label "loop", last insn.
    let f = w.program.func(guardspec_ir::FuncId(0));
    let bb = f.block_by_label("loop").unwrap();
    let idx = f.block(bb).insns.len() as u32 - 1;
    let site = guardspec_ir::InsnRef {
        func: guardspec_ir::FuncId(0),
        block: bb,
        idx,
    };
    let bp = profile.branch(site).expect("profiled");
    // Run phase: rarely taken; pair phase: strictly alternating (TFTF).
    let v = &bp.outcomes;
    let n = v.len();
    let first = (0..n * 55 / 100).filter(|&i| v.get(i)).count() as f64 / (n * 55 / 100) as f64;
    let tail_start = n * 65 / 100;
    let last = (tail_start..n).filter(|&i| v.get(i)).count() as f64 / (n - tail_start) as f64;
    assert!(first < 0.25, "run phase taken rate {first:.2}");
    assert!(
        (0.4..0.6).contains(&last),
        "pair phase taken rate {last:.2}"
    );
    // Strict alternation in the pair phase.
    let toggles = (tail_start + 1..n)
        .filter(|&i| v.get(i) != v.get(i - 1))
        .count();
    assert!(
        toggles as f64 / (n - tail_start) as f64 > 0.95,
        "pair phase must alternate"
    );
}

#[test]
fn dynamic_size_ordering_matches_paper() {
    // Paper Table 1: xlisp >> espresso >> compress ~ grep.
    let counts: Vec<(String, u64)> = all_workloads(Scale::Paper)
        .into_iter()
        .map(|w| {
            let res = run(&w.program).unwrap();
            (w.name.to_string(), res.summary.retired)
        })
        .collect();
    let get = |n: &str| counts.iter().find(|(name, _)| name == n).unwrap().1;
    assert!(get("xlisp") > get("espresso"));
    assert!(get("espresso") > get("compress"));
    assert!(get("espresso") > get("grep"));
}

#[test]
fn ocean_fp_kernel_matches_golden_bit_exactly() {
    for scale in [Scale::Test, Scale::Small] {
        let w = guardspec_workloads::ocean::build(scale);
        assert_valid(&w.program);
        let res = run(&w.program).unwrap_or_else(|e| panic!("ocean failed: {e}"));
        let bad = w.verify(&res.machine.mem);
        assert!(bad.is_empty(), "ocean {scale:?}: {bad:?}");
        // The FP pipes actually ran.
        assert!(res.summary.by_class[class_index(FuClass::FpAdd)] > 100);
        assert!(res.summary.by_class[class_index(FuClass::FpMul)] > 10);
        assert!(res.summary.by_class[class_index(FuClass::FpDiv)] >= 1);
    }
}
