//! The `compress` stand-in: a run-length compressor over input whose
//! compressibility changes phase — long runs first, then noise.  The inner
//! "same as previous byte?" branch is strongly taken through the run phase
//! and strongly not-taken through the noise phase: exactly the phased,
//! non-monotonic behavior the paper's split-branch transform targets.
//! The paper notes compress "had several nested branches with minimal code
//! interspersed between them"; the kernel mirrors that.

use crate::{Scale, Workload};
use guardspec_ir::builder::*;
use guardspec_ir::reg::r;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Memory layout (word addresses).
pub const N_ADDR: u64 = 0;
pub const OUT_LEN_ADDR: u64 = 2;
pub const CHECKSUM_ADDR: u64 = 3;
pub const LONG_RUNS_ADDR: u64 = 4;
pub const SHORT_RUNS_ADDR: u64 = 5;
pub const IN_BASE: u64 = 0x1000;
pub const OUT_BASE: u64 = 0x8_0000;

fn input_len(scale: Scale) -> usize {
    match scale {
        Scale::Test => 600,
        Scale::Small => 8_000,
        Scale::Paper => 40_000,
    }
}

/// Deterministic phased input: first ~60 % long runs, then paired bytes
/// (`aabbcc…`).  The pair phase makes the "same as previous?" branch
/// alternate TFTF — the 2-bit predictor's pathological case, and a showcase
/// for the per-segment algebraic-counter instrumentation.
pub fn generate_input(scale: Scale) -> Vec<i64> {
    let n = input_len(scale);
    let mut rng = SmallRng::seed_from_u64(0xC0_4F_EE);
    let mut out = Vec::with_capacity(n);
    let phase1 = n * 3 / 5;
    while out.len() < phase1 {
        let byte = rng.gen_range(0..256i64);
        let run = rng.gen_range(6..24usize);
        for _ in 0..run.min(phase1 - out.len()) {
            out.push(byte);
        }
    }
    // Paired phase: each byte appears exactly twice; consecutive pairs
    // always differ so the branch strictly alternates.
    let mut prev = *out.last().unwrap_or(&-1);
    while out.len() < n {
        let mut byte = rng.gen_range(0..256i64);
        if byte == prev {
            byte = (byte + 1) & 0xFF;
        }
        out.push(byte);
        if out.len() < n {
            out.push(byte);
        }
        prev = byte;
    }
    out
}

/// Golden model: RLE pairs `(run_length, byte)`, polynomial checksum, and
/// the long/short run classification (the phase-dependent diamond: long in
/// the run phase, short in the noise phase).
pub fn golden(input: &[i64]) -> (i64, i64, i64, i64) {
    let mut pairs: Vec<(i64, i64)> = Vec::new();
    let mut prev = -1i64;
    let mut runlen = 0i64;
    for &b in input {
        if b == prev {
            runlen += 1;
        } else {
            if prev >= 0 {
                pairs.push((runlen, prev));
            }
            prev = b;
            runlen = 1;
        }
    }
    if prev >= 0 {
        pairs.push((runlen, prev));
    }
    let mut sum = 0i64;
    let mut long_runs = 0i64;
    let mut short_runs = 0i64;
    for &(l, b) in &pairs {
        sum = sum.wrapping_mul(31).wrapping_add(l);
        sum = sum.wrapping_mul(31).wrapping_add(b);
        if l >= 4 {
            long_runs += 1;
        } else {
            short_runs += 1;
        }
    }
    (pairs.len() as i64 * 2, sum, long_runs, short_runs)
}

/// Build the workload.
pub fn build(scale: Scale) -> Workload {
    let input = generate_input(scale);
    let (out_len, checksum, long_runs, short_runs) = golden(&input);

    // Registers: r1=i, r2=n, r3=prev, r4=runlen, r5=outpos, r6=IN, r7=OUT,
    // r8..r12 scratch, r13=checksum accumulator, r14=k (checksum loop).
    let mut fb = FuncBuilder::new("compress");
    fb.block("entry");
    fb.li(r(6), IN_BASE as i64);
    fb.li(r(7), OUT_BASE as i64);
    fb.lw(r(2), r(0), N_ADDR as i64);
    fb.li(r(1), 0);
    fb.li(r(3), -1);
    fb.li(r(4), 0);
    fb.li(r(5), 0);
    fb.blez(r(2), "flush"); // empty input
    fb.block("loop");
    fb.add(r(10), r(6), r(1));
    fb.lw(r(9), r(10), 0); // b = in[i]
    fb.bne(r(9), r(3), "emit"); // phased: rarely taken in run phase
    fb.block("same");
    fb.addi(r(4), r(4), 1);
    fb.jump("next");
    fb.block("emit");
    fb.bltz(r(3), "skipstore"); // only true before the first byte
    fb.block("store");
    fb.add(r(11), r(7), r(5));
    fb.sw(r(4), r(11), 0);
    fb.sw(r(3), r(11), 1);
    fb.addi(r(5), r(5), 2);
    fb.block("skipstore");
    fb.mov(r(3), r(9));
    fb.li(r(4), 1);
    fb.block("next");
    fb.addi(r(1), r(1), 1);
    fb.bne(r(1), r(2), "loop"); // hot latch
    fb.block("flush");
    fb.bltz(r(3), "suminit");
    fb.block("laststore");
    fb.add(r(11), r(7), r(5));
    fb.sw(r(4), r(11), 0);
    fb.sw(r(3), r(11), 1);
    fb.addi(r(5), r(5), 2);
    fb.block("suminit");
    // Checksum pass over the output pairs.
    fb.li(r(15), 31);
    fb.li(r(13), 0);
    fb.li(r(14), 0);
    fb.blez(r(5), "done");
    fb.block("sumloop");
    fb.add(r(11), r(7), r(14));
    fb.lw(r(12), r(11), 0);
    fb.mul(r(13), r(13), r(15));
    fb.add(r(13), r(13), r(12));
    fb.addi(r(14), r(14), 1);
    fb.bne(r(14), r(5), "sumloop");
    fb.block("done");
    // Run-classification pass over the emitted pairs: long vs short runs.
    fb.li(r(16), 0);
    fb.li(r(17), 0);
    fb.li(r(14), 0);
    fb.blez(r(5), "store_res");
    fb.block("clsloop");
    fb.add(r(11), r(7), r(14));
    fb.lw(r(12), r(11), 0); // run length
    fb.slti(r(18), r(12), 4);
    fb.bne(r(18), r(0), "short_run");
    fb.block("long_run");
    fb.addi(r(16), r(16), 1);
    fb.jump("cls_next");
    fb.block("short_run");
    fb.addi(r(17), r(17), 1);
    fb.block("cls_next");
    fb.addi(r(14), r(14), 2);
    fb.slt(r(18), r(14), r(5));
    fb.bne(r(18), r(0), "clsloop");
    fb.block("store_res");
    fb.sw(r(5), r(0), OUT_LEN_ADDR as i64);
    fb.sw(r(13), r(0), CHECKSUM_ADDR as i64);
    fb.sw(r(16), r(0), LONG_RUNS_ADDR as i64);
    fb.sw(r(17), r(0), SHORT_RUNS_ADDR as i64);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.data_word(N_ADDR, input.len() as i64);
    pb.data_words(IN_BASE, &input);
    pb.mem_words(OUT_BASE + 2 * input.len() as u64 + 64);
    pb.add_func(fb);
    let prog = pb.finish("compress");

    Workload {
        name: "compress",
        description: "RLE compressor over phased (runs then noise) input",
        program: prog,
        expected: vec![
            (OUT_LEN_ADDR, out_len),
            (CHECKSUM_ADDR, checksum),
            (LONG_RUNS_ADDR, long_runs),
            (SHORT_RUNS_ADDR, short_runs),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_rle_roundtrip_properties() {
        let input = generate_input(Scale::Test);
        let (len, _sum, long_runs, short_runs) = golden(&input);
        assert!(long_runs > 0 && short_runs > 0);
        // Total run lengths must equal input length.
        let mut covered = 0i64;
        let mut prev = -1i64;
        let mut runlen = 0i64;
        for &b in &input {
            if b == prev {
                runlen += 1;
            } else {
                covered += runlen;
                prev = b;
                runlen = 1;
            }
        }
        covered += runlen;
        assert_eq!(covered, input.len() as i64);
        assert!(len > 0 && len < input.len() as i64 * 2 + 2);
    }

    #[test]
    fn input_is_phased() {
        let input = generate_input(Scale::Small);
        let phase1 = input.len() * 3 / 5;
        let same_rate =
            |s: &[i64]| s.windows(2).filter(|w| w[0] == w[1]).count() as f64 / (s.len() - 1) as f64;
        assert!(same_rate(&input[..phase1]) > 0.8, "run phase should repeat");
        // Paired phase: every other adjacent pair repeats, never more.
        let noise = &input[phase1..];
        let nr = same_rate(noise);
        assert!((0.4..0.6).contains(&nr), "pair phase same-rate {nr}");
    }
}
