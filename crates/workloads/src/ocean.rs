//! `ocean` — a SPLASH-style floating-point kernel (the paper's Section 6
//! says the study "included benchmarks from the SPEC, splash and unix
//! utilities"; its tables show only the four integer codes, so this kernel
//! is an *extension* workload exercising the three FP pipes and the FP
//! queue, which the integer benchmarks leave idle).
//!
//! The kernel is a red-black-free Jacobi sweep on a 2D grid:
//! `next[i][j] = 0.25 * (cur[i-1][j] + cur[i+1][j] + cur[i][j-1] + cur[i][j+1])`,
//! double-buffered for `STEPS` iterations.  The Rust golden model performs
//! the same f64 operations in the same order, so results are bit-exact.

use crate::{Scale, Workload};
use guardspec_ir::builder::*;
use guardspec_ir::reg::{f, r};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub const DIM_ADDR: u64 = 0;
pub const STEPS_ADDR: u64 = 1;
/// Bit pattern of the final-grid sum (f64 bits as i64).
pub const SUM_BITS_ADDR: u64 = 2;
pub const GRID_A: u64 = 0x1000;
pub const GRID_B: u64 = 0x40_000;

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (10, 3),
        Scale::Small => (28, 6),
        Scale::Paper => (48, 12),
    }
}

/// Deterministic initial grid (values in [0, 1)).
pub fn generate(scale: Scale) -> (usize, usize, Vec<f64>) {
    let (n, steps) = dims(scale);
    let mut rng = SmallRng::seed_from_u64(0x0CEA);
    let grid: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.0..1.0)).collect();
    (n, steps, grid)
}

/// Golden model: Jacobi sweep, then the bit pattern of the border-inclusive
/// sum.  Operation order matches the IR kernel exactly, so the comparison
/// is bit-exact.
pub fn golden(n: usize, steps: usize, init: &[f64]) -> i64 {
    let mut cur = init.to_vec();
    let mut nxt = init.to_vec();
    for _ in 0..steps {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let s = ((cur[(i - 1) * n + j] + cur[(i + 1) * n + j]) + cur[i * n + (j - 1)])
                    + cur[i * n + (j + 1)];
                nxt[i * n + j] = 0.25 * s;
            }
        }
        std::mem::swap(&mut cur, &mut nxt);
    }
    let mut sum = 0.0f64;
    for v in &cur {
        sum += *v;
    }
    sum.to_bits() as i64
}

pub fn build(scale: Scale) -> Workload {
    let (n, steps, grid) = generate(scale);
    let sum_bits = golden(n, steps, &grid);

    // r1=step, r2=i, r3=j, r4=n, r5=steps, r6=cur base, r7=nxt base,
    // r8..r12 scratch addresses, r13=n-1 bound.
    // f1..f6 FP scratch, f10 = 0.25, f12 = running sum.
    let mut fb = FuncBuilder::new("ocean");
    fb.block("entry");
    fb.lw(r(4), r(0), DIM_ADDR as i64);
    fb.lw(r(5), r(0), STEPS_ADDR as i64);
    fb.subi(r(13), r(4), 1);
    fb.li(r(6), GRID_A as i64);
    fb.li(r(7), GRID_B as i64);
    fb.li(r(14), 1);
    fb.li(r(15), 4);
    fb.itof(f(10), r(14)); // 1.0
    fb.itof(f(11), r(15)); // 4.0
    fb.fdiv(f(10), f(10), f(11)); // 0.25 (exercises the divide pipe)
    fb.li(r(1), 0);
    fb.block("step_loop");
    fb.li(r(2), 1);
    fb.block("i_loop");
    fb.li(r(3), 1);
    fb.mul(r(8), r(2), r(4)); // i*n
    fb.block("j_loop");
    fb.add(r(9), r(8), r(3)); // i*n + j
                              // Neighbors: (i-1)*n+j = idx-n ; (i+1)*n+j = idx+n ; idx-1 ; idx+1.
    fb.add(r(10), r(6), r(9));
    fb.sub(r(11), r(10), r(4));
    fb.flw(f(1), r(11), 0); // up
    fb.add(r(11), r(10), r(4));
    fb.flw(f(2), r(11), 0); // down
    fb.flw(f(3), r(10), -1); // left
    fb.flw(f(4), r(10), 1); // right
    fb.fadd(f(5), f(1), f(2));
    fb.fadd(f(5), f(5), f(3));
    fb.fadd(f(5), f(5), f(4));
    fb.fmul(f(6), f(10), f(5));
    fb.add(r(12), r(7), r(9));
    fb.fsw(f(6), r(12), 0);
    fb.addi(r(3), r(3), 1);
    fb.bne(r(3), r(13), "j_loop");
    fb.block("i_next");
    fb.addi(r(2), r(2), 1);
    fb.bne(r(2), r(13), "i_loop");
    fb.block("swap");
    // Swap cur/nxt pointers; borders of nxt were never written, copy them
    // implicitly by initializing BOTH grids with the same data (done at
    // program setup), so border reads stay correct after the swap.
    fb.mov(r(12), r(6));
    fb.mov(r(6), r(7));
    fb.mov(r(7), r(12));
    fb.addi(r(1), r(1), 1);
    fb.bne(r(1), r(5), "step_loop");
    fb.block("sum_init");
    fb.li(r(2), 0);
    fb.mul(r(9), r(4), r(4)); // n*n
    fb.itof(f(12), r(0)); // 0.0
    fb.block("sum_loop");
    fb.add(r(10), r(6), r(2));
    fb.flw(f(1), r(10), 0);
    fb.fadd(f(12), f(12), f(1));
    fb.addi(r(2), r(2), 1);
    fb.bne(r(2), r(9), "sum_loop");
    fb.block("store");
    // Store the raw f64 bits for bit-exact comparison.
    fb.li(r(11), SUM_BITS_ADDR as i64);
    fb.fsw(f(12), r(11), 0);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.data_word(DIM_ADDR, n as i64);
    pb.data_word(STEPS_ADDR, steps as i64);
    let bits: Vec<i64> = grid.iter().map(|v| v.to_bits() as i64).collect();
    pb.data_words(GRID_A, &bits);
    pb.data_words(GRID_B, &bits);
    pb.mem_words(GRID_B + (n * n) as u64 + 64);
    pb.add_func(fb);
    let prog = pb.finish("ocean");

    Workload {
        name: "ocean",
        description: "SPLASH-style Jacobi stencil exercising the FP pipes",
        program: prog,
        expected: vec![(SUM_BITS_ADDR, sum_bits)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_is_deterministic_and_contracting() {
        let (n, steps, grid) = generate(Scale::Test);
        let a = golden(n, steps, &grid);
        let b = golden(n, steps, &grid);
        assert_eq!(a, b);
        // Averaging keeps values in [0, 1): the sum stays bounded.
        let sum = f64::from_bits(a as u64);
        assert!(sum.is_finite() && sum >= 0.0 && sum <= (n * n) as f64);
    }

    #[test]
    fn one_step_manual_check() {
        // 3x3 grid: only the center updates, to the average of its four
        // neighbors.
        let init = vec![1.0, 2.0, 3.0, 4.0, 100.0, 6.0, 7.0, 8.0, 9.0];
        let bits = golden(3, 1, &init);
        let sum = f64::from_bits(bits as u64);
        let center = 0.25 * (((2.0 + 8.0) + 4.0) + 6.0);
        let expect = 1.0 + 2.0 + 3.0 + 4.0 + center + 6.0 + 7.0 + 8.0 + 9.0;
        assert_eq!(sum, expect);
    }
}
