//! The `xlisp` stand-in: an interpreter inner loop.  xlisp spends its time
//! in tag-dispatched evaluation; the defining microarchitectural trait is
//! the *register-relative jump* per dispatched operation, which the BTB
//! cannot capture (Section 6) — hence xlisp's lowest prediction accuracy in
//! Table 1.  The kernel is a small stack VM executing deterministic random
//! RPN programs through a `jtab` dispatch loop.

use crate::{Scale, Workload};
use guardspec_ir::builder::*;
use guardspec_ir::reg::r;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub const ACC_ADDR: u64 = 2;
pub const OPS_ADDR: u64 = 3;
pub const POS_ADDS_ADDR: u64 = 4;
pub const NEG_ADDS_ADDR: u64 = 5;
pub const CODE_BASE: u64 = 0x1000;
pub const STACK_BASE: u64 = 0x400;

/// Bytecodes.
pub const OP_PUSH: i64 = 0;
pub const OP_ADD: i64 = 1;
pub const OP_SUB: i64 = 2;
pub const OP_MUL: i64 = 3;
pub const OP_XOR: i64 = 4;
pub const OP_END: i64 = 5;
pub const OP_DONE: i64 = 6;

fn num_exprs(scale: Scale) -> usize {
    match scale {
        Scale::Test => 60,
        Scale::Small => 4_000,
        Scale::Paper => 26_000,
    }
}

/// Generate well-formed RPN expression streams.
pub fn generate(scale: Scale) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(0x115B);
    let mut code = Vec::new();
    for _ in 0..num_exprs(scale) {
        let mut depth = 0usize;
        let len = rng.gen_range(3..18usize);
        for _ in 0..len {
            if depth < 2 || (depth < 8 && rng.gen_bool(0.45)) {
                code.push(OP_PUSH);
                code.push(rng.gen_range(-50..50i64));
                depth += 1;
            } else {
                code.push(match rng.gen_range(0..4u8) {
                    0 => OP_ADD,
                    1 => OP_SUB,
                    2 => OP_MUL,
                    _ => OP_XOR,
                });
                depth -= 1;
            }
        }
        // Reduce whatever is left to a single value.
        while depth > 1 {
            code.push(OP_ADD);
            depth -= 1;
        }
        code.push(OP_END);
    }
    code.push(OP_DONE);
    code
}

/// Golden model: run the VM in Rust.  Returns
/// `(acc, ops, non-negative ADD results, negative ADD results)`.
pub fn golden(code: &[i64]) -> (i64, i64, i64, i64) {
    let mut stack: Vec<i64> = Vec::new();
    let mut acc = 0i64;
    let mut ops = 0i64;
    let mut pos_adds = 0i64;
    let mut neg_adds = 0i64;
    let mut pc = 0usize;
    loop {
        let op = code[pc];
        pc += 1;
        ops += 1;
        match op {
            OP_PUSH => {
                stack.push(code[pc]);
                pc += 1;
            }
            OP_ADD => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                let v = a.wrapping_add(b);
                // Sign tally: the data-dependent diamond in the kernel.
                if v < 0 {
                    neg_adds += 1;
                } else {
                    pos_adds += 1;
                }
                stack.push(v);
            }
            OP_SUB => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a.wrapping_sub(b));
            }
            OP_MUL => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a.wrapping_mul(b));
            }
            OP_XOR => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a ^ b);
            }
            OP_END => {
                // Abs-accumulate: the sign check becomes a data-dependent
                // conditional branch in the IR kernel.
                let v = stack.pop().unwrap();
                acc = if v >= 0 {
                    acc.wrapping_add(v)
                } else {
                    acc.wrapping_sub(v)
                };
            }
            OP_DONE => return (acc, ops, pos_adds, neg_adds),
            other => panic!("bad opcode {other}"),
        }
    }
}

pub fn build(scale: Scale) -> Workload {
    let code = generate(scale);
    let (acc, ops, pos_adds, neg_adds) = golden(&code);

    // r1=pc, r2=sp, r3=acc, r4=op count, r5=code base, r6=stack base,
    // r7=op, r8..r12 scratch.
    let mut fb = FuncBuilder::new("xlisp");
    fb.block("entry");
    fb.li(r(5), CODE_BASE as i64);
    fb.li(r(6), STACK_BASE as i64);
    fb.li(r(1), 0);
    fb.li(r(2), 0);
    fb.li(r(3), 0);
    fb.li(r(4), 0);
    fb.li(r(13), 64); // stack capacity
    fb.li(r(14), 0);
    fb.li(r(15), 0);
    fb.block("vm");
    fb.add(r(8), r(5), r(1));
    fb.lw(r(7), r(8), 0); // op = code[pc]
    fb.addi(r(1), r(1), 1);
    fb.addi(r(4), r(4), 1);
    // Stack-depth guard, as real interpreters carry: practically always
    // passes, a highly-predictable conditional.
    fb.slt(r(11), r(2), r(13)); // sp < cap
    fb.bne(r(11), r(0), "dispatch");
    fb.block("trap");
    fb.sw(r(2), r(0), 5); // record overflow and stop
    fb.halt();
    fb.block("dispatch");
    fb.jtab(
        r(7),
        &[
            "op_push", "op_add", "op_sub", "op_mul", "op_xor", "op_end", "op_done",
        ],
    );
    fb.block("op_push");
    fb.add(r(8), r(5), r(1));
    fb.lw(r(9), r(8), 0); // value
    fb.addi(r(1), r(1), 1);
    fb.add(r(10), r(6), r(2));
    fb.sw(r(9), r(10), 0);
    fb.addi(r(2), r(2), 1);
    fb.jump("vm");
    fb.block("op_add");
    fb.subi(r(2), r(2), 2);
    fb.add(r(10), r(6), r(2));
    fb.lw(r(9), r(10), 0); // a
    fb.lw(r(11), r(10), 1); // b
    fb.add(r(12), r(9), r(11));
    fb.bltz(r(12), "add_neg"); // data-dependent sign diamond
    fb.block("add_pos");
    fb.addi(r(14), r(14), 1);
    fb.jump("add_store");
    fb.block("add_neg");
    fb.addi(r(15), r(15), 1);
    fb.block("add_store");
    fb.sw(r(12), r(10), 0);
    fb.addi(r(2), r(2), 1);
    fb.jump("vm");
    fb.block("op_sub");
    fb.subi(r(2), r(2), 2);
    fb.add(r(10), r(6), r(2));
    fb.lw(r(9), r(10), 0);
    fb.lw(r(11), r(10), 1);
    fb.sub(r(12), r(9), r(11));
    fb.sw(r(12), r(10), 0);
    fb.addi(r(2), r(2), 1);
    fb.jump("vm");
    fb.block("op_mul");
    fb.subi(r(2), r(2), 2);
    fb.add(r(10), r(6), r(2));
    fb.lw(r(9), r(10), 0);
    fb.lw(r(11), r(10), 1);
    fb.mul(r(12), r(9), r(11));
    fb.sw(r(12), r(10), 0);
    fb.addi(r(2), r(2), 1);
    fb.jump("vm");
    fb.block("op_xor");
    fb.subi(r(2), r(2), 2);
    fb.add(r(10), r(6), r(2));
    fb.lw(r(9), r(10), 0);
    fb.lw(r(11), r(10), 1);
    fb.xor(r(12), r(9), r(11));
    fb.sw(r(12), r(10), 0);
    fb.addi(r(2), r(2), 1);
    fb.jump("vm");
    fb.block("op_end");
    fb.subi(r(2), r(2), 1);
    fb.add(r(10), r(6), r(2));
    fb.lw(r(9), r(10), 0);
    fb.bltz(r(9), "end_neg"); // data-dependent sign branch
    fb.block("end_pos");
    fb.add(r(3), r(3), r(9));
    fb.jump("vm");
    fb.block("end_neg");
    fb.sub(r(3), r(3), r(9));
    fb.jump("vm");
    fb.block("op_done");
    fb.sw(r(3), r(0), ACC_ADDR as i64);
    fb.sw(r(4), r(0), OPS_ADDR as i64);
    fb.sw(r(14), r(0), POS_ADDS_ADDR as i64);
    fb.sw(r(15), r(0), NEG_ADDS_ADDR as i64);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.data_words(CODE_BASE, &code);
    pb.mem_words(CODE_BASE + code.len() as u64 + 64);
    pb.add_func(fb);
    let prog = pb.finish("xlisp");

    Workload {
        name: "xlisp",
        description: "stack-VM interpreter loop with jtab (register-relative) dispatch",
        program: prog,
        expected: vec![
            (ACC_ADDR, acc),
            (OPS_ADDR, ops),
            (POS_ADDS_ADDR, pos_adds),
            (NEG_ADDS_ADDR, neg_adds),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_vm_evaluates_manual_program() {
        // (3 4 +) (10 2 -) => acc = 7 + 8 = 15, ops = 3+3+1 ... count them:
        let code = vec![
            OP_PUSH, 3, OP_PUSH, 4, OP_ADD, OP_END, OP_PUSH, 10, OP_PUSH, 2, OP_SUB, OP_END,
            OP_DONE,
        ];
        let (acc, ops, pos_adds, neg_adds) = golden(&code);
        assert_eq!((pos_adds, neg_adds), (1, 0));
        assert_eq!(acc, 15);
        assert_eq!(ops, 9); // 4 pushes + 2 binops + 2 ends + done
                            // Negative results are abs-accumulated.
        let code2 = vec![OP_PUSH, 2, OP_PUSH, 10, OP_SUB, OP_END, OP_DONE];
        assert_eq!(golden(&code2).0, 8);
    }

    #[test]
    fn generated_code_is_well_formed() {
        let code = generate(Scale::Test);
        assert_eq!(*code.last().unwrap(), OP_DONE);
        let (_acc, ops, ..) = golden(&code); // panics if malformed
        assert!(ops > 100);
    }

    #[test]
    fn wrapping_arithmetic_is_deterministic() {
        let code = generate(Scale::Test);
        let a = golden(&code);
        let b = golden(&code);
        assert_eq!(a, b);
    }
}
