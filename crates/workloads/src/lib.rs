//! # guardspec-workloads
//!
//! Synthetic stand-ins for the paper's four benchmarks (Table 1):
//!
//! | paper      | here                | character reproduced                                   |
//! |------------|---------------------|--------------------------------------------------------|
//! | compress   | [`compress`]        | RLE compressor over phased (runs → noise) input: the inner "same byte?" branch is strongly *phased*, the paper's split-branch showcase; nested branches with minimal interspersed code |
//! | espresso   | [`espresso`]        | cube-cover kernel over 3-valued cubes: data-dependent short-arm diamonds, moderately biased branches |
//! | xlisp      | [`xlisp`]           | bytecode-interpreter loop with register-relative (`jtab`) dispatch — the BTB-hostile indirect jumps that give xlisp the lowest prediction accuracy |
//! | grep       | [`grep`]            | naive substring search: inner mismatch branch highly predictable, high branch fraction |
//!
//! Every workload carries a Rust *golden model* executed at build time; the
//! expected memory results are embedded in [`Workload::expected`] so tests
//! and the harness can verify that the IR kernel (and any transformed
//! version of it) computed the right answer.
//!
//! Inputs are deterministic (fixed-seed `SmallRng`), so profiles, traces and
//! tables are exactly reproducible.

pub mod compress;
pub mod espresso;
pub mod grep;
pub mod ocean;
pub mod xlisp;

use guardspec_ir::Program;

/// Workload size presets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny inputs for unit tests (thousands of dynamic instructions).
    Test,
    /// Small inputs for quick runs (hundreds of thousands).
    Small,
    /// The scale used to regenerate the paper's tables (millions,
    /// preserving the paper's xlisp ≫ espresso ≫ compress ≈ grep ordering).
    Paper,
}

/// A ready-to-run benchmark program with its expected results.
pub struct Workload {
    pub name: &'static str,
    pub description: &'static str,
    pub program: Program,
    /// `(word address, expected value)` pairs the program must produce.
    pub expected: Vec<(u64, i64)>,
}

impl Workload {
    /// Check a memory image against the expected results; returns the
    /// mismatches (empty = correct).
    pub fn verify(&self, mem: &[i64]) -> Vec<(u64, i64, i64)> {
        self.expected
            .iter()
            .filter_map(|&(addr, want)| {
                let got = mem.get(addr as usize).copied().unwrap_or(i64::MIN);
                (got != want).then_some((addr, want, got))
            })
            .collect()
    }
}

/// All four paper workloads at the given scale, in Table 1 order.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    vec![
        compress::build(scale),
        espresso::build(scale),
        xlisp::build(scale),
        grep::build(scale),
    ]
}

/// The paper's four plus the SPLASH-style FP extension kernel.
pub fn extended_workloads(scale: Scale) -> Vec<Workload> {
    let mut v = all_workloads(scale);
    v.push(ocean::build(scale));
    v
}

/// Result-slot conventions shared by all workloads.
pub mod layout {
    /// First result word.
    pub const RESULT_BASE: u64 = 2;
}
