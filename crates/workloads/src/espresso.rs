//! The `espresso` stand-in: the cube-containment kernel at the heart of
//! two-level logic minimization.  Cubes are vectors over {0, 1, 2} (2 = don't
//! care); cube A covers cube B when every A literal is don't-care or equal
//! to B's.  The kernel counts covering pairs — a doubly-nested loop of
//! data-dependent, short-armed conditionals with moderately biased branches,
//! matching espresso's profile in Table 1.

use crate::{Scale, Workload};
use guardspec_ir::builder::*;
use guardspec_ir::reg::r;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub const NUM_CUBES_ADDR: u64 = 0;
pub const WIDTH_ADDR: u64 = 1;
pub const COVER_COUNT_ADDR: u64 = 2;
pub const DC_COUNT_ADDR: u64 = 3;
pub const ODD_SUM_ADDR: u64 = 4;
pub const EVEN_SUM_ADDR: u64 = 5;
pub const CUBE_BASE: u64 = 0x1000;

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (18, 6),
        Scale::Small => (70, 10),
        Scale::Paper => (170, 14),
    }
}

/// Deterministic cube set.  Don't-care density ~68 % makes the inner
/// "is don't care?" branch genuinely two-sided; some cubes are broadened
/// copies of others so real cover pairs exist.
pub fn generate(scale: Scale) -> (usize, usize, Vec<i64>) {
    let (c, w) = dims(scale);
    let mut rng = SmallRng::seed_from_u64(0xE59);
    let mut cubes = vec![0i64; c * w];
    for i in 0..c {
        if i % 3 == 2 && i > 0 {
            // Broadened copy of an earlier cube: guaranteed cover pair.
            let src = rng.gen_range(0..i);
            for v in 0..w {
                let x = cubes[src * w + v];
                cubes[i * w + v] = if rng.gen_bool(0.4) { 2 } else { x };
            }
        } else {
            for v in 0..w {
                cubes[i * w + v] = if rng.gen_bool(0.68) {
                    2
                } else {
                    rng.gen_range(0..2i64)
                };
            }
        }
    }
    (c, w, cubes)
}

/// Golden model: `(cover pairs, don't-cares scanned, odd tally, even tally)`.
/// The odd/even tally of `av + bv` parity is the deliberately unpredictable
/// short-arm diamond the paper's guarded execution targets.
pub fn golden(c: usize, w: usize, cubes: &[i64]) -> (i64, i64, i64, i64) {
    let mut cover = 0i64;
    let mut dcs = 0i64;
    let mut odd = 0i64;
    let mut even = 0i64;
    for a in 0..c {
        for b in 0..c {
            if a == b {
                continue;
            }
            let mut covers = true;
            for v in 0..w {
                let av = cubes[a * w + v];
                if av == 2 {
                    dcs += 1;
                    continue;
                }
                let bv = cubes[b * w + v];
                if (av + bv) & 1 == 1 {
                    odd += 1;
                } else {
                    even += 1;
                }
                if av != bv {
                    covers = false;
                    break;
                }
            }
            if covers {
                cover += 1;
            }
        }
    }
    (cover, dcs, odd, even)
}

pub fn build(scale: Scale) -> Workload {
    let (c, w, cubes) = generate(scale);
    let (cover, dcs, odd, even) = golden(c, w, &cubes);

    // r1=a, r2=b, r3=v, r4=C, r5=W, r6=base, r7=cover, r8=dc count,
    // r9=a*W base ptr, r10=b*W base ptr, r11..r14 scratch.
    let mut fb = FuncBuilder::new("espresso");
    fb.block("entry");
    fb.li(r(6), CUBE_BASE as i64);
    fb.lw(r(4), r(0), NUM_CUBES_ADDR as i64);
    fb.lw(r(5), r(0), WIDTH_ADDR as i64);
    fb.li(r(7), 0);
    fb.li(r(8), 0);
    fb.li(r(16), 0);
    fb.li(r(17), 0);
    fb.li(r(1), 0);
    fb.blez(r(4), "done");
    fb.block("a_loop");
    fb.mul(r(9), r(1), r(5));
    fb.add(r(9), r(9), r(6)); // &cube[a][0]
    fb.li(r(2), 0);
    fb.block("b_loop");
    fb.beq(r(1), r(2), "b_next"); // skip a == b (taken 1/C)
    fb.block("pair");
    fb.mul(r(10), r(2), r(5));
    fb.add(r(10), r(10), r(6)); // &cube[b][0]
    fb.li(r(3), 0);
    fb.block("v_loop");
    fb.add(r(11), r(9), r(3));
    fb.lw(r(12), r(11), 0); // av
    fb.slti(r(13), r(12), 2);
    fb.bne(r(13), r(0), "compare"); // taken when av is a real literal (~32 %)
    fb.block("dontcare");
    fb.addi(r(8), r(8), 1);
    fb.jump("v_next");
    fb.block("compare");
    fb.add(r(11), r(10), r(3));
    fb.lw(r(14), r(11), 0); // bv
                            // Unpredictable parity tally (short-arm diamond, ~50-50).
    fb.add(r(15), r(12), r(14));
    fb.andi(r(15), r(15), 1);
    fb.beq(r(15), r(0), "tally_even");
    fb.block("tally_odd");
    fb.addi(r(16), r(16), 1);
    fb.jump("mismatch_chk");
    fb.block("tally_even");
    fb.addi(r(17), r(17), 1);
    fb.block("mismatch_chk");
    fb.bne(r(12), r(14), "b_next"); // literal mismatch: not covered
    fb.block("v_next");
    fb.addi(r(3), r(3), 1);
    fb.bne(r(3), r(5), "v_loop");
    fb.block("covered");
    fb.addi(r(7), r(7), 1);
    fb.block("b_next");
    fb.addi(r(2), r(2), 1);
    fb.bne(r(2), r(4), "b_loop");
    fb.block("a_next");
    fb.addi(r(1), r(1), 1);
    fb.bne(r(1), r(4), "a_loop");
    fb.block("done");
    fb.sw(r(7), r(0), COVER_COUNT_ADDR as i64);
    fb.sw(r(8), r(0), DC_COUNT_ADDR as i64);
    fb.sw(r(16), r(0), ODD_SUM_ADDR as i64);
    fb.sw(r(17), r(0), EVEN_SUM_ADDR as i64);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.data_word(NUM_CUBES_ADDR, c as i64);
    pb.data_word(WIDTH_ADDR, w as i64);
    pb.data_words(CUBE_BASE, &cubes);
    pb.mem_words(CUBE_BASE + cubes.len() as u64 + 64);
    pb.add_func(fb);
    let prog = pb.finish("espresso");

    Workload {
        name: "espresso",
        description: "cube-containment kernel over 3-valued cubes",
        program: prog,
        expected: vec![
            (COVER_COUNT_ADDR, cover),
            (DC_COUNT_ADDR, dcs),
            (ODD_SUM_ADDR, odd),
            (EVEN_SUM_ADDR, even),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_has_cover_pairs() {
        let (c, w, cubes) = generate(Scale::Test);
        let (cover, dcs, odd, even) = golden(c, w, &cubes);
        assert!(cover > 0, "broadened copies guarantee cover pairs");
        assert!(dcs > 0);
        // The parity diamond must be genuinely two-sided.
        let bal = odd as f64 / (odd + even) as f64;
        assert!((0.3..0.7).contains(&bal), "parity balance {bal}");
    }

    #[test]
    fn golden_manual_example() {
        // A = [2, 1], B = [0, 1]: A covers B; B does not cover A.
        let cubes = vec![2, 1, 0, 1];
        let (cover, ..) = golden(2, 2, &cubes);
        assert_eq!(cover, 1);
        // Identical cubes cover each other.
        let twins = vec![1, 0, 1, 0];
        let (cover2, ..) = golden(2, 2, &twins);
        assert_eq!(cover2, 2);
    }
}
