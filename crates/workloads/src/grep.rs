//! The `grep` stand-in: naive substring search.  The inner character-compare
//! branch fails (and exits the inner loop) at the first position almost
//! always, giving the highly-regular branch behavior and high prediction
//! accuracy Table 1 reports for grep.

use crate::{Scale, Workload};
use guardspec_ir::builder::*;
use guardspec_ir::reg::r;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub const TEXT_LEN_ADDR: u64 = 0;
pub const PAT_LEN_ADDR: u64 = 1;
pub const COUNT_ADDR: u64 = 2;
pub const POS_SUM_ADDR: u64 = 3;
pub const ODD_CHARS_ADDR: u64 = 4;
pub const EVEN_CHARS_ADDR: u64 = 5;
pub const TEXT_BASE: u64 = 0x1000;
pub const PAT_BASE: u64 = 0x800;

fn text_len(scale: Scale) -> usize {
    match scale {
        Scale::Test => 800,
        Scale::Small => 6_000,
        Scale::Paper => 26_000,
    }
}

/// Deterministic text over a small alphabet with the pattern planted at
/// irregular intervals.
pub fn generate(scale: Scale) -> (Vec<i64>, Vec<i64>) {
    let n = text_len(scale);
    let pat: Vec<i64> = vec![7, 3, 7, 11];
    let mut rng = SmallRng::seed_from_u64(0x96E9);
    let mut text: Vec<i64> = (0..n).map(|_| rng.gen_range(0..16i64)).collect();
    // Plant some true matches.
    let mut i = 13usize;
    while i + pat.len() < n {
        text[i..i + pat.len()].copy_from_slice(&pat);
        i += rng.gen_range(97..331usize);
    }
    (text, pat)
}

/// Golden model: matches, position sum, and the per-position character
/// parity tally (the unpredictable short-arm diamond).
pub fn golden(text: &[i64], pat: &[i64]) -> (i64, i64, i64, i64) {
    let mut count = 0i64;
    let mut pos_sum = 0i64;
    let mut odd = 0i64;
    let mut even = 0i64;
    if pat.is_empty() || text.len() < pat.len() {
        return (0, 0, 0, 0);
    }
    for i in 0..=(text.len() - pat.len()) {
        if text[i] & 1 == 1 {
            odd += 1;
        } else {
            even += 1;
        }
        if text[i..i + pat.len()] == *pat {
            count += 1;
            pos_sum = pos_sum.wrapping_add(i as i64);
        }
    }
    (count, pos_sum, odd, even)
}

pub fn build(scale: Scale) -> Workload {
    let (text, pat) = generate(scale);
    let (count, pos_sum, odd, even) = golden(&text, &pat);

    // r1=i, r2=last_start, r3=j, r4=pat_len, r5=text base, r6=pat base,
    // r7=count, r8=pos_sum, r9..r12 scratch.
    let mut fb = FuncBuilder::new("grep");
    fb.block("entry");
    fb.li(r(5), TEXT_BASE as i64);
    fb.li(r(6), PAT_BASE as i64);
    fb.lw(r(9), r(0), TEXT_LEN_ADDR as i64);
    fb.lw(r(4), r(0), PAT_LEN_ADDR as i64);
    fb.sub(r(2), r(9), r(4)); // last start index
    fb.li(r(1), 0);
    fb.li(r(7), 0);
    fb.li(r(8), 0);
    fb.li(r(17), 0);
    fb.li(r(18), 0);
    fb.bltz(r(2), "done");
    fb.block("outer");
    // Unpredictable parity tally over the scanned character.
    fb.add(r(15), r(5), r(1));
    fb.lw(r(15), r(15), 0);
    fb.andi(r(16), r(15), 1);
    fb.beq(r(16), r(0), "tally_even");
    fb.block("tally_odd");
    fb.addi(r(17), r(17), 1);
    fb.jump("istart");
    fb.block("tally_even");
    fb.addi(r(18), r(18), 1);
    fb.block("istart");
    fb.li(r(3), 0);
    fb.block("inner");
    fb.add(r(10), r(5), r(1));
    fb.add(r(10), r(10), r(3));
    fb.lw(r(11), r(10), 0); // text[i+j]
    fb.add(r(12), r(6), r(3));
    fb.lw(r(13), r(12), 0); // pat[j]
    fb.bne(r(11), r(13), "nomatch"); // highly taken: mismatch at j=0
    fb.block("advance");
    fb.addi(r(3), r(3), 1);
    fb.bne(r(3), r(4), "inner");
    fb.block("matched");
    fb.addi(r(7), r(7), 1);
    fb.add(r(8), r(8), r(1));
    fb.block("nomatch");
    fb.addi(r(1), r(1), 1);
    fb.slt(r(14), r(2), r(1)); // r14 = last < i
    fb.beq(r(14), r(0), "outer"); // hot latch
    fb.block("done");
    fb.sw(r(7), r(0), COUNT_ADDR as i64);
    fb.sw(r(8), r(0), POS_SUM_ADDR as i64);
    fb.sw(r(17), r(0), ODD_CHARS_ADDR as i64);
    fb.sw(r(18), r(0), EVEN_CHARS_ADDR as i64);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.data_word(TEXT_LEN_ADDR, text.len() as i64);
    pb.data_word(PAT_LEN_ADDR, pat.len() as i64);
    pb.data_words(TEXT_BASE, &text);
    pb.data_words(PAT_BASE, &pat);
    pb.mem_words(TEXT_BASE + text.len() as u64 + 64);
    pb.add_func(fb);
    let prog = pb.finish("grep");

    Workload {
        name: "grep",
        description: "naive substring search with planted matches",
        program: prog,
        expected: vec![
            (COUNT_ADDR, count),
            (POS_SUM_ADDR, pos_sum),
            (ODD_CHARS_ADDR, odd),
            (EVEN_CHARS_ADDR, even),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_planted_matches() {
        let (text, pat) = generate(Scale::Test);
        let (count, pos_sum, odd, even) = golden(&text, &pat);
        assert!(count > 0, "planted matches must be found");
        assert!(pos_sum > 0);
        let bal = odd as f64 / (odd + even) as f64;
        assert!((0.3..0.7).contains(&bal), "parity balance {bal}");
    }

    #[test]
    fn golden_edge_cases() {
        assert_eq!(golden(&[], &[1]), (0, 0, 0, 0));
        assert_eq!(golden(&[1, 2], &[1, 2, 3]), (0, 0, 0, 0));
        assert_eq!(golden(&[1, 2, 1, 2], &[1, 2]).0, 2);
        assert_eq!(golden(&[5, 5, 5], &[5]), (3, 3, 3, 0));
    }
}
