//! 512-entry, 2-bit saturating-counter branch history table.

/// The four counter states of Section 6.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TwoBitState {
    StronglyNotTaken,
    WeaklyNotTaken,
    WeaklyTaken,
    StronglyTaken,
}

impl TwoBitState {
    fn from_counter(c: u8) -> TwoBitState {
        match c {
            0 => TwoBitState::StronglyNotTaken,
            1 => TwoBitState::WeaklyNotTaken,
            2 => TwoBitState::WeaklyTaken,
            _ => TwoBitState::StronglyTaken,
        }
    }
}

/// Direct-mapped table of 2-bit saturating counters, indexed by PC word
/// address.  Default geometry is the paper's 512 entries.
///
/// ```
/// use guardspec_predict::TwoBitTable;
/// let mut t = TwoBitTable::paper_default();
/// t.update(0x1000, true);
/// t.update(0x1000, true);
/// assert!(t.predict(0x1000));
/// t.update(0x1000, false); // hysteresis: one miss doesn't flip it
/// assert!(t.predict(0x1000));
/// ```
#[derive(Clone, Debug)]
pub struct TwoBitTable {
    counters: Vec<u8>,
    mask: u64,
}

impl TwoBitTable {
    /// `entries` must be a power of two.
    pub fn new(entries: usize) -> TwoBitTable {
        assert!(
            entries.is_power_of_two(),
            "BHT entries must be a power of two"
        );
        // Initial state: weakly not-taken.
        TwoBitTable {
            counters: vec![1; entries],
            mask: entries as u64 - 1,
        }
    }

    /// The paper's configuration: 512 entries.
    pub fn paper_default() -> TwoBitTable {
        TwoBitTable::new(512)
    }

    /// Table size in entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    /// Return every counter to the initial weakly-not-taken state without
    /// reallocating (simulator-state reuse across runs).
    pub fn reset(&mut self) {
        self.counters.fill(1);
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Current counter state (for tests and introspection).
    pub fn state(&self, pc: u64) -> TwoBitState {
        TwoBitState::from_counter(self.counters[self.index(pc)])
    }

    /// Train the counter with the actual outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Predict-then-update in one step; returns whether the prediction was
    /// correct.
    pub fn access(&mut self, pc: u64, taken: bool) -> bool {
        let pred = self.predict(pc);
        self.update(pc, taken);
        pred == taken
    }
}

/// Replay `(pc, taken)` outcomes through a fresh table and return the
/// fraction predicted correctly — the Table 1 accuracy column.
pub fn measure_twobit_accuracy(
    entries: usize,
    outcomes: impl IntoIterator<Item = (u64, bool)>,
) -> f64 {
    let mut t = TwoBitTable::new(entries);
    let (mut total, mut correct) = (0u64, 0u64);
    for (pc, taken) in outcomes {
        total += 1;
        correct += t.access(pc, taken) as u64;
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_and_states() {
        let mut t = TwoBitTable::new(4);
        let pc = 0x1000;
        assert_eq!(t.state(pc), TwoBitState::WeaklyNotTaken);
        assert!(!t.predict(pc));
        t.update(pc, true);
        assert_eq!(t.state(pc), TwoBitState::WeaklyTaken);
        assert!(t.predict(pc));
        t.update(pc, true);
        t.update(pc, true);
        t.update(pc, true);
        assert_eq!(t.state(pc), TwoBitState::StronglyTaken);
        t.update(pc, false);
        assert_eq!(t.state(pc), TwoBitState::WeaklyTaken);
        assert!(t.predict(pc), "2-bit hysteresis survives one not-taken");
        t.update(pc, false);
        t.update(pc, false);
        t.update(pc, false);
        assert_eq!(t.state(pc), TwoBitState::StronglyNotTaken);
    }

    #[test]
    fn aliasing_between_far_pcs() {
        let mut t = TwoBitTable::new(4);
        // Entries 4 apart in word index alias in a 4-entry table.
        let (a, b) = (0x1000u64, 0x1000 + 4 * 4);
        t.update(a, true);
        t.update(a, true);
        assert!(t.predict(b), "aliased entry shares state");
    }

    #[test]
    fn biased_branch_predicts_well() {
        // 95% taken branch: accuracy should approach 95%.
        let outcomes = (0..1000).map(|i| (0x2000u64, i % 20 != 0));
        let acc = measure_twobit_accuracy(512, outcomes);
        assert!(acc > 0.89, "accuracy {acc}");
    }

    #[test]
    fn alternating_branch_defeats_two_bit() {
        // TFTFTF...: the classic 2-bit pathological case.
        let outcomes = (0..1000).map(|i| (0x2000u64, i % 2 == 0));
        let acc = measure_twobit_accuracy(512, outcomes);
        assert!(acc < 0.6, "accuracy {acc}");
    }

    #[test]
    fn phased_branch_mispredicts_only_at_boundaries() {
        // 50 taken then 50 not-taken: 2-bit mispredicts ~ twice per phase
        // change plus warmup.
        let outcomes = (0..100).map(|i| (0x2000u64, i < 50));
        let acc = measure_twobit_accuracy(512, outcomes);
        assert!(acc >= 0.95, "accuracy {acc}");
    }

    #[test]
    fn empty_stream_zero_accuracy() {
        assert_eq!(measure_twobit_accuracy(512, std::iter::empty()), 0.0);
    }
}
