//! # guardspec-predict
//!
//! Branch-prediction mechanisms of the R10000-like machine model:
//!
//! * [`TwoBitTable`] — the 512-entry, 2-bit saturating-counter branch
//!   history table ("maintains the four different states — strongly taken,
//!   strongly not-taken, weakly taken, weakly not-taken — of the previous
//!   branch outcomes", Section 6),
//! * [`Btb`] — a tagged branch target buffer that "can only store the
//!   history information for branch instructions whose target addresses
//!   have absolute value"; subroutine calls, returns and register-relative
//!   jumps are never entered,
//! * [`BranchKind`] — the taxonomy that decides which mechanism applies,
//! * [`Scheme`] — the three evaluation schemes of Tables 3/4 (2-bit,
//!   proposed-on-top-of-2-bit, perfect),
//! * [`measure_twobit_accuracy`] — replays an outcome stream through a
//!   fresh table (the Table 1 "correctly predicted branches" column).

pub mod btb;
pub mod gshare;
pub mod twobit;

pub use btb::Btb;
pub use gshare::{measure_gshare_accuracy, measure_onebit_accuracy, Gshare, OneBitTable};
pub use twobit::{measure_twobit_accuracy, TwoBitState, TwoBitTable};

/// Classification of control-transfer instructions for prediction purposes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchKind {
    /// Ordinary conditional branch with an absolute target: predicted by the
    /// BHT, target cacheable in the BTB.
    CondDirect,
    /// Branch-likely: statically predicted taken; "they don't have a
    /// specific history counter or an entry in the branch target buffer".
    CondLikely,
    /// Unconditional direct jump: always taken, absolute target — eligible
    /// for the BTB like any other absolute-target branch.
    DirectJump,
    /// Subroutine call: absolute target but, per Section 6, never entered
    /// in the BTB; costs a decode redirect.
    Call,
    /// Register-relative jump (`jtab`) or return: target unknown until the
    /// instruction executes; never predictable except under [`Scheme::Perfect`].
    Indirect,
}

impl BranchKind {
    /// Classify an IR instruction (non-control instructions return `None`).
    pub fn of(insn: &guardspec_ir::Instruction) -> Option<BranchKind> {
        use guardspec_ir::Opcode::*;
        Some(match &insn.op {
            Branch { likely: false, .. } => BranchKind::CondDirect,
            Branch { likely: true, .. } => BranchKind::CondLikely,
            Jump { .. } => BranchKind::DirectJump,
            Call { .. } => BranchKind::Call,
            Jtab { .. } | Ret => BranchKind::Indirect,
            Halt => BranchKind::Call,
            _ => return None,
        })
    }
}

/// The three schemes evaluated in Tables 3 and 4.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// Baseline: hardware 2-bit prediction only, original code.
    TwoBit,
    /// The paper's proposal: same 2-bit hardware, code transformed with
    /// branch-likelies / guarded execution / split branches.
    /// (Hardware-wise identical to [`Scheme::TwoBit`]; the difference is in
    /// the program fed to the simulator.)
    Proposed,
    /// Oracle: every control transfer, of every kind, predicted correctly.
    Perfect,
}

impl Scheme {
    pub const ALL: [Scheme; 3] = [Scheme::TwoBit, Scheme::Proposed, Scheme::Perfect];

    pub fn label(self) -> &'static str {
        match self {
            Scheme::TwoBit => "2-bit BP",
            Scheme::Proposed => "Proposed",
            Scheme::Perfect => "Perfect BP",
        }
    }

    pub fn is_perfect(self) -> bool {
        matches!(self, Scheme::Perfect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::reg::r;
    use guardspec_ir::{BlockId, Instruction, Opcode};

    #[test]
    fn kind_classification() {
        let f = [
            Instruction::new(Opcode::Branch {
                cond: guardspec_ir::BranchCond::Eq(r(1), r(2)),
                target: BlockId(0),
                likely: false,
            }),
            Instruction::new(Opcode::Branch {
                cond: guardspec_ir::BranchCond::Eq(r(1), r(2)),
                target: BlockId(0),
                likely: true,
            }),
            Instruction::new(Opcode::Jump { target: BlockId(0) }),
            Instruction::new(Opcode::Jtab {
                index: r(1),
                table: vec![BlockId(0)],
            }),
            Instruction::new(Opcode::Ret),
            Instruction::new(Opcode::Nop),
        ];
        assert_eq!(BranchKind::of(&f[0]), Some(BranchKind::CondDirect));
        assert_eq!(BranchKind::of(&f[1]), Some(BranchKind::CondLikely));
        assert_eq!(BranchKind::of(&f[2]), Some(BranchKind::DirectJump));
        assert_eq!(
            BranchKind::of(&Instruction::new(Opcode::Ret)),
            Some(BranchKind::Indirect)
        );
        assert_eq!(BranchKind::of(&f[3]), Some(BranchKind::Indirect));
        assert_eq!(BranchKind::of(&f[4]), Some(BranchKind::Indirect));
        assert_eq!(BranchKind::of(&f[5]), None);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::TwoBit.label(), "2-bit BP");
        assert!(Scheme::Perfect.is_perfect());
        assert!(!Scheme::Proposed.is_perfect());
        assert_eq!(Scheme::ALL.len(), 3);
    }
}
