//! Branch target buffer.
//!
//! A direct-mapped, tagged cache of branch-site PC → taken-target PC.  Only
//! branches with absolute targets (ordinary conditional branches) are
//! inserted; branch-likelies, calls, returns and register-relative jumps
//! never get an entry — the limitation Section 6 calls out.  A predicted-
//! taken branch that *misses* in the BTB costs a decode-redirect bubble; a
//! hit redirects fetch with no bubble.

/// Direct-mapped tagged BTB.
#[derive(Clone, Debug)]
pub struct Btb {
    /// `(tag, target)` per set; tag = full PC for exactness.
    entries: Vec<Option<(u64, u64)>>,
    mask: u64,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// `sets` must be a power of two.
    pub fn new(sets: usize) -> Btb {
        assert!(sets.is_power_of_two(), "BTB sets must be a power of two");
        Btb {
            entries: vec![None; sets],
            mask: sets as u64 - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Small default so capacity/conflict effects are visible on synthetic
    /// workloads (the paper only says the BTB "is limited in size").
    pub fn paper_default() -> Btb {
        Btb::new(64)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.entries.len()
    }

    /// Invalidate all entries and clear statistics without reallocating
    /// (simulator-state reuse across runs).
    pub fn reset(&mut self) {
        self.entries.fill(None);
        self.hits = 0;
        self.misses = 0;
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Look up the predicted target for the branch at `pc`, recording
    /// hit/miss statistics.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let i = self.index(pc);
        match self.entries[i] {
            Some((tag, target)) if tag == pc => {
                self.hits += 1;
                Some(target)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Install/refresh the entry for a taken branch with an absolute target.
    pub fn install(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.entries[i] = Some((pc, target));
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all lookups so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of live entries (for pressure diagnostics: if-conversion
    /// "reduces the number of entries in the branch target buffer").
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(8);
        assert_eq!(btb.lookup(0x1000), None);
        btb.install(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
        assert_eq!(btb.hits(), 1);
        assert_eq!(btb.misses(), 1);
        assert!((btb.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflicting_pcs_evict() {
        let mut btb = Btb::new(4);
        // Same set, different tags (16 bytes apart in a 4-set BTB).
        let (a, b) = (0x1000u64, 0x1000 + 4 * 4);
        btb.install(a, 0x2000);
        btb.install(b, 0x3000);
        assert_eq!(btb.lookup(a), None, "evicted by conflicting install");
        assert_eq!(btb.lookup(b), Some(0x3000));
    }

    #[test]
    fn occupancy_counts_live_entries() {
        let mut btb = Btb::new(8);
        assert_eq!(btb.occupancy(), 0);
        btb.install(0x1000, 0x2000);
        btb.install(0x1004, 0x2000);
        assert_eq!(btb.occupancy(), 2);
        // Reinstall same pc: no growth.
        btb.install(0x1000, 0x2400);
        assert_eq!(btb.occupancy(), 2);
    }
}
