//! Extension predictors beyond the paper's 2-bit table, for the design
//! sweeps: a 1-bit last-outcome table (the obvious cheaper baseline) and a
//! gshare global-history predictor (the obvious later improvement).  Both
//! expose the same replay API as the 2-bit table so the harness can sweep
//! predictor families.

/// Direct-mapped 1-bit last-outcome predictor.
#[derive(Clone, Debug)]
pub struct OneBitTable {
    bits: Vec<bool>,
    mask: u64,
}

impl OneBitTable {
    pub fn new(entries: usize) -> OneBitTable {
        assert!(entries.is_power_of_two());
        OneBitTable {
            bits: vec![false; entries],
            mask: entries as u64 - 1,
        }
    }

    /// Forget everything (all entries back to predict-not-taken), as on a
    /// context switch in the paper's trace methodology.
    pub fn reset(&mut self) {
        self.bits.fill(false);
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    pub fn predict(&self, pc: u64) -> bool {
        self.bits[self.index(pc)]
    }

    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.bits[i] = taken;
    }

    pub fn access(&mut self, pc: u64, taken: bool) -> bool {
        let p = self.predict(pc);
        self.update(pc, taken);
        p == taken
    }
}

/// gshare: 2-bit counters indexed by `pc ^ global_history`.
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    mask: u64,
    history: u64,
    hist_mask: u64,
}

impl Gshare {
    pub fn new(entries: usize, history_bits: u32) -> Gshare {
        assert!(entries.is_power_of_two());
        Gshare {
            counters: vec![1; entries],
            mask: entries as u64 - 1,
            history: 0,
            // `1 << 64` would overflow, so saturate: 64+ bits keeps all.
            hist_mask: if history_bits >= 64 {
                u64::MAX
            } else {
                (1u64 << history_bits) - 1
            },
        }
    }

    /// Forget everything: counters back to weakly-not-taken, history cleared.
    pub fn reset(&mut self) {
        self.counters.fill(1);
        self.history = 0;
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & self.hist_mask;
    }

    pub fn access(&mut self, pc: u64, taken: bool) -> bool {
        let p = self.predict(pc);
        self.update(pc, taken);
        p == taken
    }
}

/// Replay accuracy helpers mirroring [`crate::measure_twobit_accuracy`].
pub fn measure_onebit_accuracy(
    entries: usize,
    outcomes: impl IntoIterator<Item = (u64, bool)>,
) -> f64 {
    let mut t = OneBitTable::new(entries);
    let (mut total, mut correct) = (0u64, 0u64);
    for (pc, taken) in outcomes {
        total += 1;
        correct += t.access(pc, taken) as u64;
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

pub fn measure_gshare_accuracy(
    entries: usize,
    history_bits: u32,
    outcomes: impl IntoIterator<Item = (u64, bool)>,
) -> f64 {
    let mut t = Gshare::new(entries, history_bits);
    let (mut total, mut correct) = (0u64, 0u64);
    for (pc, taken) in outcomes {
        total += 1;
        correct += t.access(pc, taken) as u64;
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_twobit_accuracy;

    #[test]
    fn onebit_flips_immediately() {
        let mut t = OneBitTable::new(8);
        assert!(!t.predict(0x1000));
        t.update(0x1000, true);
        assert!(t.predict(0x1000));
        t.update(0x1000, false);
        assert!(!t.predict(0x1000));
    }

    #[test]
    fn twobit_beats_onebit_on_biased_with_glitches() {
        // T T T F T T T F ... : 1-bit mispredicts twice per glitch,
        // 2-bit once.
        let outcomes: Vec<(u64, bool)> = (0..4000).map(|i| (0x40u64, i % 4 != 3)).collect();
        let one = measure_onebit_accuracy(512, outcomes.iter().copied());
        let two = measure_twobit_accuracy(512, outcomes.iter().copied());
        assert!(two > one, "two-bit {two} vs one-bit {one}");
    }

    #[test]
    fn gshare_learns_alternation_that_defeats_twobit() {
        let outcomes: Vec<(u64, bool)> = (0..4000).map(|i| (0x40u64, i % 2 == 0)).collect();
        let two = measure_twobit_accuracy(512, outcomes.iter().copied());
        let gs = measure_gshare_accuracy(512, 8, outcomes.iter().copied());
        assert!(two < 0.6, "2-bit fails on TFTF: {two}");
        assert!(gs > 0.95, "gshare learns TFTF: {gs}");
    }

    #[test]
    fn gshare_history_masked() {
        let mut g = Gshare::new(16, 4);
        for i in 0..100 {
            g.update(0x1000, i % 2 == 0);
        }
        assert!(g.history < 16);
    }

    #[test]
    fn gshare_aliasing_interferes() {
        // Two branches whose (pc >> 2) differ only above the index bits
        // share every counter when history is identical: training one to
        // taken drags the other's prediction along (destructive aliasing).
        let mut g = Gshare::new(16, 0); // no history: pure pc indexing
        let (a, b) = (0x40u64, 0x40u64 + (16 << 2)); // same index, 16 entries
        assert!(!g.predict(a) && !g.predict(b));
        g.update(a, true);
        g.update(a, true);
        assert!(g.predict(a));
        assert!(g.predict(b), "aliased pc shares the trained counter");
        // A third pc with a different index is untouched.
        assert!(!g.predict(0x44));
    }

    #[test]
    fn gshare_history_wraparound_keeps_last_bits() {
        // Only the newest `history_bits` outcomes matter: two tables fed
        // different long prefixes but the same recent suffix end with the
        // same history register.
        let mut a = Gshare::new(64, 3);
        let mut b = Gshare::new(64, 3);
        for _ in 0..50 {
            a.update(0x80, true);
            b.update(0x80, false);
        }
        for taken in [true, false, true] {
            a.update(0x80, taken);
            b.update(0x80, taken);
        }
        assert_eq!(a.history, b.history, "history register holds last 3 bits");
        assert_eq!(a.history, 0b101);
        // 64-bit history saturates instead of overflowing the mask shift.
        let mut w = Gshare::new(16, 64);
        for i in 0..200 {
            w.update(0x40, i % 3 == 0);
        }
        assert!(w.predict(0x40) || !w.predict(0x40)); // no panic is the point
    }

    #[test]
    fn reset_restores_initial_predictions() {
        let mut o = OneBitTable::new(8);
        let mut g = Gshare::new(16, 4);
        for i in 0..40 {
            o.update(0x40 + 4 * (i % 8), true);
            g.update(0x40 + 4 * (i % 8), true);
        }
        assert!(o.predict(0x44) && g.predict(0x44));
        o.reset();
        g.reset();
        assert!(!o.predict(0x44), "one-bit back to not-taken");
        assert!(!g.predict(0x44), "gshare back to weakly-not-taken");
        assert_eq!(g.history, 0, "gshare history cleared");
        // A reset table behaves exactly like a fresh one on replay.
        let outcomes: Vec<(u64, bool)> = (0..200).map(|i| (0x40, i % 2 == 0)).collect();
        let fresh = measure_gshare_accuracy(16, 4, outcomes.iter().copied());
        let (mut total, mut correct) = (0u64, 0u64);
        for (pc, taken) in outcomes.iter().copied() {
            total += 1;
            correct += g.access(pc, taken) as u64;
        }
        assert_eq!(fresh, correct as f64 / total as f64);
    }
}
