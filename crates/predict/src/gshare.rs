//! Extension predictors beyond the paper's 2-bit table, for the design
//! sweeps: a 1-bit last-outcome table (the obvious cheaper baseline) and a
//! gshare global-history predictor (the obvious later improvement).  Both
//! expose the same replay API as the 2-bit table so the harness can sweep
//! predictor families.

/// Direct-mapped 1-bit last-outcome predictor.
#[derive(Clone, Debug)]
pub struct OneBitTable {
    bits: Vec<bool>,
    mask: u64,
}

impl OneBitTable {
    pub fn new(entries: usize) -> OneBitTable {
        assert!(entries.is_power_of_two());
        OneBitTable {
            bits: vec![false; entries],
            mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    pub fn predict(&self, pc: u64) -> bool {
        self.bits[self.index(pc)]
    }

    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.bits[i] = taken;
    }

    pub fn access(&mut self, pc: u64, taken: bool) -> bool {
        let p = self.predict(pc);
        self.update(pc, taken);
        p == taken
    }
}

/// gshare: 2-bit counters indexed by `pc ^ global_history`.
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    mask: u64,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    pub fn new(entries: usize, history_bits: u32) -> Gshare {
        assert!(entries.is_power_of_two());
        Gshare {
            counters: vec![1; entries],
            mask: entries as u64 - 1,
            history: 0,
            history_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
    }

    pub fn access(&mut self, pc: u64, taken: bool) -> bool {
        let p = self.predict(pc);
        self.update(pc, taken);
        p == taken
    }
}

/// Replay accuracy helpers mirroring [`crate::measure_twobit_accuracy`].
pub fn measure_onebit_accuracy(
    entries: usize,
    outcomes: impl IntoIterator<Item = (u64, bool)>,
) -> f64 {
    let mut t = OneBitTable::new(entries);
    let (mut total, mut correct) = (0u64, 0u64);
    for (pc, taken) in outcomes {
        total += 1;
        correct += t.access(pc, taken) as u64;
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

pub fn measure_gshare_accuracy(
    entries: usize,
    history_bits: u32,
    outcomes: impl IntoIterator<Item = (u64, bool)>,
) -> f64 {
    let mut t = Gshare::new(entries, history_bits);
    let (mut total, mut correct) = (0u64, 0u64);
    for (pc, taken) in outcomes {
        total += 1;
        correct += t.access(pc, taken) as u64;
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_twobit_accuracy;

    #[test]
    fn onebit_flips_immediately() {
        let mut t = OneBitTable::new(8);
        assert!(!t.predict(0x1000));
        t.update(0x1000, true);
        assert!(t.predict(0x1000));
        t.update(0x1000, false);
        assert!(!t.predict(0x1000));
    }

    #[test]
    fn twobit_beats_onebit_on_biased_with_glitches() {
        // T T T F T T T F ... : 1-bit mispredicts twice per glitch,
        // 2-bit once.
        let outcomes: Vec<(u64, bool)> = (0..4000).map(|i| (0x40u64, i % 4 != 3)).collect();
        let one = measure_onebit_accuracy(512, outcomes.iter().copied());
        let two = measure_twobit_accuracy(512, outcomes.iter().copied());
        assert!(two > one, "two-bit {two} vs one-bit {one}");
    }

    #[test]
    fn gshare_learns_alternation_that_defeats_twobit() {
        let outcomes: Vec<(u64, bool)> = (0..4000).map(|i| (0x40u64, i % 2 == 0)).collect();
        let two = measure_twobit_accuracy(512, outcomes.iter().copied());
        let gs = measure_gshare_accuracy(512, 8, outcomes.iter().copied());
        assert!(two < 0.6, "2-bit fails on TFTF: {two}");
        assert!(gs > 0.95, "gshare learns TFTF: {gs}");
    }

    #[test]
    fn gshare_history_masked() {
        let mut g = Gshare::new(16, 4);
        for i in 0..100 {
            g.update(0x1000, i % 2 == 0);
        }
        assert!(g.history < 16);
    }
}
