//! Criterion benches, one per paper table/figure: each measures the time to
//! regenerate the corresponding artifact at Test scale (the shape-checking
//! work; the printed numbers come from the `tableN`/`figureN` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use guardspec_bench::{run_all_schemes, table1_row, workloads};
use guardspec_core::DiamondCfg;
use guardspec_sim::MachineConfig;
use guardspec_workloads::Scale;

fn bench_table1(c: &mut Criterion) {
    let ws = workloads(Scale::Test);
    c.bench_function("table1_characteristics", |b| {
        b.iter(|| {
            for w in &ws {
                std::hint::black_box(table1_row(w));
            }
        })
    });
}

fn bench_table3_table4(c: &mut Criterion) {
    // Tables 3 and 4 come from the same three-scheme simulation sweep.
    let ws = workloads(Scale::Test);
    let cfg = MachineConfig::r10000();
    c.bench_function("table3_table4_three_scheme_sweep", |b| {
        b.iter(|| {
            for w in &ws {
                std::hint::black_box(run_all_schemes(w, &cfg));
            }
        })
    });
}

fn bench_figure2_figure34(c: &mut Criterion) {
    let d = DiamondCfg::figure2();
    let phases = [(0.4, 0.95), (0.2, 0.5), (0.4, 0.05)];
    c.bench_function("figure2_figure34_cost_model", |b| {
        b.iter(|| {
            let base = d.base_cost(0.5);
            let spec = d.speculated_cost(0.5);
            let guard = d.guarded_cost();
            let seg = d.segmented_cost(&phases, 0.9);
            std::hint::black_box((base, spec, guard, seg))
        })
    });
}

criterion_group!(
    tables,
    bench_table1,
    bench_table3_table4,
    bench_figure2_figure34
);
criterion_main!(tables);
