//! Component microbenchmarks: interpreter throughput, simulator throughput,
//! predictor update rate, and the transform driver.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use guardspec_core::{transform_program, DriverOptions};
use guardspec_interp::profile::profile_program;
use guardspec_interp::trace::trace_program;
use guardspec_predict::{Scheme, TwoBitTable};
use guardspec_sim::{simulate_trace, MachineConfig};
use guardspec_workloads::{Scale, Workload};

fn grep() -> Workload {
    guardspec_workloads::grep::build(Scale::Test)
}

fn bench_interpreter(c: &mut Criterion) {
    let w = grep();
    let retired = guardspec_interp::run(&w.program).unwrap().summary.retired;
    let mut g = c.benchmark_group("interpreter");
    g.throughput(Throughput::Elements(retired));
    g.bench_function("functional_execute", |b| {
        b.iter(|| std::hint::black_box(guardspec_interp::run(&w.program).unwrap()))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let w = grep();
    let (layout, trace, _) = trace_program(&w.program).unwrap();
    let cfg = MachineConfig::r10000();
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("cycle_level_twobit", |b| {
        b.iter(|| {
            std::hint::black_box(
                simulate_trace(&w.program, &layout, &trace, Scheme::TwoBit, &cfg).unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let outcomes: Vec<(u64, bool)> = (0..4096u64)
        .map(|i| (0x1000 + (i % 37) * 4, i % 3 != 0))
        .collect();
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(outcomes.len() as u64));
    g.bench_function("twobit_update_stream", |b| {
        b.iter(|| {
            let mut t = TwoBitTable::paper_default();
            let mut correct = 0u64;
            for &(pc, taken) in &outcomes {
                correct += t.access(pc, taken) as u64;
            }
            std::hint::black_box(correct)
        })
    });
    g.finish();
}

fn bench_transform_driver(c: &mut Criterion) {
    let w = grep();
    let (profile, _) = profile_program(&w.program).unwrap();
    c.bench_function("figure6_driver", |b| {
        b.iter(|| {
            let mut p = w.program.clone();
            std::hint::black_box(transform_program(
                &mut p,
                &profile,
                &DriverOptions::proposed(),
            ))
        })
    });
}

criterion_group!(
    components,
    bench_interpreter,
    bench_simulator,
    bench_predictor,
    bench_transform_driver
);
criterion_main!(components);
