//! Trace fan-out microbenchmarks: binary trace codec encode/decode
//! throughput, and the broadcast (SPMC) trace ring against the
//! single-consumer (SPSC) configuration it generalizes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use guardspec_interp::trace::trace_program;
use guardspec_interp::{broadcast_channel, trace_channel, tracefile, TraceEntry};
use guardspec_workloads::Scale;

fn entries() -> (guardspec_interp::StaticLayout, Vec<TraceEntry>) {
    let w = guardspec_workloads::grep::build(Scale::Test);
    let (layout, trace, _) = trace_program(&w.program).unwrap();
    (layout, trace)
}

fn bench_codec(c: &mut Criterion) {
    let (layout, trace) = entries();
    let blob = tracefile::encode(&layout, trace.iter(), 42);
    let mut g = c.benchmark_group("tracefile");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| std::hint::black_box(tracefile::encode(&layout, trace.iter(), 42)))
    });
    g.bench_function("decode", |b| {
        b.iter(|| std::hint::black_box(tracefile::decode(&blob).unwrap()))
    });
    g.finish();
    eprintln!(
        "[tracefan] blob: {} entries -> {} bytes ({:.2} bytes/entry)",
        trace.len(),
        blob.len(),
        blob.len() as f64 / trace.len() as f64
    );
}

/// Push the whole trace through a ring and drain it from `readers`
/// consumer threads, recycling chunk buffers like the simulator does.
fn pump(trace: &[TraceEntry], consumers: usize) -> u64 {
    let (mut writer, readers) = if consumers == 1 {
        let (w, r) = trace_channel();
        (w, vec![r])
    } else {
        broadcast_channel(consumers)
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = readers
            .into_iter()
            .map(|r| {
                s.spawn(move || {
                    let mut n = 0u64;
                    while let Some(chunk) = r.recv() {
                        n += chunk.len() as u64;
                        r.recycle(chunk);
                    }
                    n
                })
            })
            .collect();
        for &e in trace {
            writer.push(e);
        }
        writer.finish();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn bench_ring(c: &mut Criterion) {
    let (_, trace) = entries();
    let mut g = c.benchmark_group("trace_ring");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for consumers in [1usize, 2, 4] {
        g.bench_function(&format!("consumers_{consumers}"), |b| {
            b.iter(|| {
                let n = pump(&trace, consumers);
                assert_eq!(n, trace.len() as u64 * consumers as u64);
                std::hint::black_box(n)
            })
        });
    }
    g.finish();
}

criterion_group!(tracefan, bench_codec, bench_ring);
criterion_main!(tracefan);
