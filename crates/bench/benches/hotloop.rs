//! Hot-loop microbenchmarks for the allocation-free pipeline rewrite:
//! simulator-state reuse vs fresh construction, dense-site profiling, and
//! the streamed end-to-end path vs materialize-then-simulate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use guardspec_interp::profile::profile_program;
use guardspec_interp::trace::trace_program;
use guardspec_predict::Scheme;
use guardspec_sim::{
    simulate_program, simulate_program_streamed, simulate_trace, simulate_trace_in, MachineConfig,
    SimContext,
};
use guardspec_workloads::{Scale, Workload};

fn grep() -> Workload {
    guardspec_workloads::grep::build(Scale::Test)
}

/// Fresh simulator state per run (what `simulate_trace` does) vs one
/// [`SimContext`] reused across runs (what the harness workers do) — the
/// difference is the per-cell allocation cost the rewrite removed.
fn bench_state_reuse(c: &mut Criterion) {
    let w = grep();
    let (layout, trace, _) = trace_program(&w.program).unwrap();
    let cfg = MachineConfig::r10000();
    let mut g = c.benchmark_group("hotloop");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("simulate_fresh_state", |b| {
        b.iter(|| {
            std::hint::black_box(
                simulate_trace(&w.program, &layout, &trace, Scheme::TwoBit, &cfg).unwrap(),
            )
        })
    });
    let mut ctx = SimContext::new(&cfg);
    g.bench_function("simulate_reused_state", |b| {
        b.iter(|| {
            std::hint::black_box(
                simulate_trace_in(&mut ctx, &w.program, &layout, &trace, Scheme::TwoBit, &cfg)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

/// Dense-by-site-id profiling (Vec indexed by `StaticLayout` id, no
/// per-branch BTreeMap traffic in the retire loop).
fn bench_profile_dense(c: &mut Criterion) {
    let w = grep();
    let retired = guardspec_interp::run(&w.program).unwrap().summary.retired;
    let mut g = c.benchmark_group("hotloop");
    g.throughput(Throughput::Elements(retired));
    g.bench_function("profile_dense_sites", |b| {
        b.iter(|| std::hint::black_box(profile_program(&w.program).unwrap()))
    });
    g.finish();
}

/// Full interpret+simulate cell: single-threaded materialize-then-simulate
/// vs the chunked SPSC streaming pipeline.  On multi-core hosts the streamed
/// path overlaps the two phases; on one core it measures channel overhead.
fn bench_streamed_cell(c: &mut Criterion) {
    let w = grep();
    let cfg = MachineConfig::r10000();
    let mut g = c.benchmark_group("cell");
    g.bench_function("materialize_then_simulate", |b| {
        b.iter(|| std::hint::black_box(simulate_program(&w.program, Scheme::TwoBit, &cfg).unwrap()))
    });
    g.bench_function("streamed", |b| {
        b.iter(|| {
            std::hint::black_box(
                simulate_program_streamed(&w.program, Scheme::TwoBit, &cfg).unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    hotloop,
    bench_state_reuse,
    bench_profile_dense,
    bench_streamed_cell
);
criterion_main!(hotloop);
