//! Golden stdout: the table binaries must print byte-identical tables no
//! matter how the work is scheduled — serial, work-stealing, streamed,
//! single-threaded materialized traces, trace fan-out on or off, and cold
//! or warm trace/stage caches.  Each cold invocation gets a fresh scratch
//! working directory, so its cache/artifact side effects stay out of the
//! repo; warm invocations deliberately rerun in the same directory.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("guardspec-golden-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run `bin` with `args` in `dir`; return its stdout bytes.
fn run_in(bin: &str, args: &[&str], dir: &Path) -> Vec<u8> {
    let out = Command::new(bin)
        .args(args)
        .current_dir(dir)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Run `bin` with `args` in a fresh scratch dir; return its stdout bytes.
fn run(bin: &str, args: &[&str], tag: &str) -> Vec<u8> {
    let dir = scratch(tag);
    let out = run_in(bin, args, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn assert_invariant_stdout(bin: &str, name: &str) {
    let reference = run(bin, &["--scale", "test", "--jobs", "1"], name);
    assert!(!reference.is_empty(), "{name} printed nothing");
    for (tag, args) in [
        ("jobs8", &["--scale", "test", "--jobs", "8"] as &[&str]),
        (
            "nostream",
            &["--scale", "test", "--jobs", "1", "--no-stream"],
        ),
        (
            "nostream8",
            &["--scale", "test", "--jobs", "8", "--no-stream"],
        ),
        (
            "nofanout",
            &["--scale", "test", "--jobs", "1", "--no-fanout"],
        ),
        (
            "nofanout8",
            &["--scale", "test", "--jobs", "8", "--no-fanout"],
        ),
        (
            "notracecache",
            &["--scale", "test", "--jobs", "1", "--no-trace-cache"],
        ),
    ] {
        let got = run(bin, args, &format!("{name}-{tag}"));
        assert_eq!(
            String::from_utf8_lossy(&reference),
            String::from_utf8_lossy(&got),
            "{name} stdout differs under {args:?}"
        );
    }
    // Cold then warm in the SAME directory, fan-out on and off: replaying
    // cached stage results and binary trace blobs must not change a byte
    // of the table.
    for (tag, args) in [
        ("coldwarm", &["--scale", "test", "--jobs", "1"] as &[&str]),
        (
            "coldwarm-nofanout",
            &["--scale", "test", "--jobs", "8", "--no-fanout"],
        ),
    ] {
        let dir = scratch(&format!("{name}-{tag}"));
        let cold = run_in(bin, args, &dir);
        let warm = run_in(bin, args, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            String::from_utf8_lossy(&reference),
            String::from_utf8_lossy(&cold),
            "{name} cold stdout differs under {args:?}"
        );
        assert_eq!(
            String::from_utf8_lossy(&cold),
            String::from_utf8_lossy(&warm),
            "{name} warm stdout differs from cold under {args:?}"
        );
    }
}

#[test]
fn table1_stdout_is_schedule_invariant() {
    assert_invariant_stdout(env!("CARGO_BIN_EXE_table1"), "table1");
}

#[test]
fn table3_stdout_is_schedule_invariant() {
    assert_invariant_stdout(env!("CARGO_BIN_EXE_table3"), "table3");
}
