//! Golden stdout: the table binaries must print byte-identical tables no
//! matter how the work is scheduled — serial, work-stealing, streamed, or
//! single-threaded materialized traces.  Each invocation gets a fresh
//! scratch working directory, so every run is cold and its cache/artifact
//! side effects stay out of the repo.

use std::path::PathBuf;
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("guardspec-golden-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run `bin` with `args` in a fresh scratch dir; return its stdout bytes.
fn run(bin: &str, args: &[&str], tag: &str) -> Vec<u8> {
    let dir = scratch(tag);
    let out = Command::new(bin)
        .args(args)
        .current_dir(&dir)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
    out.stdout
}

fn assert_invariant_stdout(bin: &str, name: &str) {
    let reference = run(bin, &["--scale", "test", "--jobs", "1"], name);
    assert!(!reference.is_empty(), "{name} printed nothing");
    for (tag, args) in [
        ("jobs8", &["--scale", "test", "--jobs", "8"] as &[&str]),
        (
            "nostream",
            &["--scale", "test", "--jobs", "1", "--no-stream"],
        ),
        (
            "nostream8",
            &["--scale", "test", "--jobs", "8", "--no-stream"],
        ),
    ] {
        let got = run(bin, args, &format!("{name}-{tag}"));
        assert_eq!(
            String::from_utf8_lossy(&reference),
            String::from_utf8_lossy(&got),
            "{name} stdout differs under {args:?}"
        );
    }
}

#[test]
fn table1_stdout_is_schedule_invariant() {
    assert_invariant_stdout(env!("CARGO_BIN_EXE_table1"), "table1");
}

#[test]
fn table3_stdout_is_schedule_invariant() {
    assert_invariant_stdout(env!("CARGO_BIN_EXE_table3"), "table3");
}
