//! Golden stdout: the table binaries must print byte-identical tables no
//! matter how the work is scheduled — serial, work-stealing, streamed,
//! single-threaded materialized traces, trace fan-out on or off, and cold
//! or warm trace/stage caches.  Each cold invocation gets a fresh scratch
//! working directory, so its cache/artifact side effects stay out of the
//! repo; warm invocations deliberately rerun in the same directory.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("guardspec-golden-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run `bin` with `args` in `dir`; return its stdout bytes.
fn run_in(bin: &str, args: &[&str], dir: &Path) -> Vec<u8> {
    let out = Command::new(bin)
        .args(args)
        .current_dir(dir)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Run `bin` with `args` in a fresh scratch dir; return its stdout bytes.
fn run(bin: &str, args: &[&str], tag: &str) -> Vec<u8> {
    let dir = scratch(tag);
    let out = run_in(bin, args, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn assert_invariant_stdout(bin: &str, name: &str) {
    let reference = run(bin, &["--scale", "test", "--jobs", "1"], name);
    assert!(!reference.is_empty(), "{name} printed nothing");
    for (tag, args) in [
        ("jobs8", &["--scale", "test", "--jobs", "8"] as &[&str]),
        (
            "nostream",
            &["--scale", "test", "--jobs", "1", "--no-stream"],
        ),
        (
            "nostream8",
            &["--scale", "test", "--jobs", "8", "--no-stream"],
        ),
        (
            "nofanout",
            &["--scale", "test", "--jobs", "1", "--no-fanout"],
        ),
        (
            "nofanout8",
            &["--scale", "test", "--jobs", "8", "--no-fanout"],
        ),
        (
            "notracecache",
            &["--scale", "test", "--jobs", "1", "--no-trace-cache"],
        ),
        // Structured logging goes to stderr only: cranking the level to
        // debug must not add (or move) a single stdout byte.
        (
            "debuglog",
            &["--scale", "test", "--jobs", "1", "--log-level", "debug"],
        ),
        (
            "debuglog8",
            &["--scale", "test", "--jobs", "8", "--log-level", "debug"],
        ),
        // The interpreted per-entry engine must print the same bytes as the
        // compiled decoded-uop engine (the default), under both schedulers
        // and with fan-out on or off.
        (
            "interp",
            &["--scale", "test", "--jobs", "1", "--no-compile"],
        ),
        (
            "interp8",
            &["--scale", "test", "--jobs", "8", "--no-compile"],
        ),
        (
            "interp-nofanout",
            &[
                "--scale",
                "test",
                "--jobs",
                "1",
                "--no-compile",
                "--no-fanout",
            ],
        ),
        (
            "interp-nofanout8",
            &[
                "--scale",
                "test",
                "--jobs",
                "8",
                "--no-compile",
                "--no-fanout",
            ],
        ),
    ] {
        let got = run(bin, args, &format!("{name}-{tag}"));
        assert_eq!(
            String::from_utf8_lossy(&reference),
            String::from_utf8_lossy(&got),
            "{name} stdout differs under {args:?}"
        );
    }
    // Cold then warm in the SAME directory, fan-out on and off: replaying
    // cached stage results and binary trace blobs must not change a byte
    // of the table.
    for (tag, args) in [
        ("coldwarm", &["--scale", "test", "--jobs", "1"] as &[&str]),
        (
            "coldwarm-nofanout",
            &["--scale", "test", "--jobs", "8", "--no-fanout"],
        ),
    ] {
        let dir = scratch(&format!("{name}-{tag}"));
        let cold = run_in(bin, args, &dir);
        let warm = run_in(bin, args, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            String::from_utf8_lossy(&reference),
            String::from_utf8_lossy(&cold),
            "{name} cold stdout differs under {args:?}"
        );
        assert_eq!(
            String::from_utf8_lossy(&cold),
            String::from_utf8_lossy(&warm),
            "{name} warm stdout differs from cold under {args:?}"
        );
    }
}

#[test]
fn table1_stdout_is_schedule_invariant() {
    assert_invariant_stdout(env!("CARGO_BIN_EXE_table1"), "table1");
}

/// Sampled estimates are a pure function of (trace, params): the printed
/// table must not change a byte across schedulers or the fan-out switch.
#[test]
fn sampled_stdout_is_schedule_invariant() {
    let bin = env!("CARGO_BIN_EXE_table3");
    // Test traces are ~10k entries; the paper-sized default interval would
    // fall back to exact runs, so size the windows to the scale.
    let base = [
        "--scale",
        "test",
        "--sample",
        "--sample-interval",
        "1000",
        "--sample-detail",
        "50",
        "--sample-warm",
        "50",
    ];
    fn with<'a>(base: &[&'a str], extra: &[&'a str]) -> Vec<&'a str> {
        let mut v = base.to_vec();
        v.extend_from_slice(extra);
        v
    }
    let reference = run(bin, &with(&base, &["--jobs", "1"]), "table3-sampled");
    assert!(!reference.is_empty(), "sampled table3 printed nothing");
    for (tag, extra) in [
        ("jobs8", &["--jobs", "8"] as &[&str]),
        ("nofanout", &["--jobs", "1", "--no-fanout"]),
        ("nofanout8", &["--jobs", "8", "--no-fanout"]),
    ] {
        let got = run(bin, &with(&base, extra), &format!("table3-sampled-{tag}"));
        assert_eq!(
            String::from_utf8_lossy(&reference),
            String::from_utf8_lossy(&got),
            "sampled table3 stdout differs under {extra:?}"
        );
    }
}

/// `sampling` keys appear in stable artifacts exactly when `--sample` is
/// on: exact runs must stay byte-compatible with pre-sampling artifacts.
#[test]
fn stable_artifact_sampling_fields_follow_the_flag() {
    let bin = env!("CARGO_BIN_EXE_table3");
    let dir = scratch("table3-stablejson");
    run_in(
        bin,
        &[
            "--scale",
            "test",
            "--jobs",
            "1",
            "--stable-json",
            "exact.json",
        ],
        &dir,
    );
    let exact = std::fs::read_to_string(dir.join("exact.json")).unwrap();
    assert!(
        !exact.contains("sampling"),
        "exact stable artifact must carry no sampling fields"
    );
    run_in(
        bin,
        &[
            "--scale",
            "test",
            "--jobs",
            "1",
            "--sample",
            "--sample-interval",
            "1000",
            "--sample-detail",
            "50",
            "--sample-warm",
            "50",
            "--stable-json",
            "sampled.json",
        ],
        &dir,
    );
    let sampled = std::fs::read_to_string(dir.join("sampled.json")).unwrap();
    assert!(
        sampled.contains("\"sampling\""),
        "sampled stable artifact must carry the sampling estimate"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn table3_stdout_is_schedule_invariant() {
    assert_invariant_stdout(env!("CARGO_BIN_EXE_table3"), "table3");
}
