//! # guardspec-bench
//!
//! The binaries that regenerate every table and figure of the paper's
//! evaluation.  Each binary prints one artifact:
//!
//! | binary     | artifact |
//! |------------|----------|
//! | `table1`   | Table 1 — benchmark characteristics |
//! | `table2`   | Table 2 — latencies |
//! | `table3`   | Table 3 — reservation-station usage under the three schemes |
//! | `table4`   | Table 4 — functional-unit usage and IPC |
//! | `figure2`  | Figure 2 — base/speculated/guarded schedule costs (3100/2900/3600) |
//! | `figure34` | Figures 3+4 — per-phase schedules and the 2756-cycle combined cost |
//! | `ablation` | individual/combined effects of each mechanism (the title question) |
//! | `sweeps`   | design-choice sweeps (DESIGN.md §5) |
//! | `decisions`| per-branch Figure-6 decision dump |
//! | `gsx`      | run/profile/optimize/simulate a textual-assembly file |
//! | `report`   | cycle-accounting attribution: predicted vs measured per branch site |
//!
//! ## Common flags
//!
//! Every binary accepts (via [`guardspec_harness::args`]):
//!
//! * `--scale test|small|paper` — workload size preset (default `small`;
//!   `paper` regenerates the numbers quoted in EXPERIMENTS.md).  A bad
//!   value prints a diagnostic to stderr and exits with status 2.
//! * `--jobs N` — worker threads for the experiment job graph (`0`/absent
//!   = one per core).  Output is byte-identical at any thread count.
//! * `--json <path>` — also write the run's machine-readable artifact to
//!   `<path>`.
//! * `--stable-json <path>` — also write the run's *stable* payload (no
//!   timings or machine-local meta) to `<path>`; byte-identical at any
//!   `--jobs`, cold or warm cache, and to what the `gsd` server returns
//!   for the same spec.
//!
//! Unknown flags print the offending argument to stderr and exit 2.
//! * `--no-stream` — disable the streaming trace pipeline and simulate
//!   each cell from a fully materialized trace on one thread (same
//!   results; preferable on single-core machines; only affects
//!   `--no-fanout` runs).
//! * `--no-fanout` — interpret once per cell (the historical pipeline)
//!   instead of tracing each distinct program once and sharing the trace
//!   across all its cells.  Same results, more interpreter work.
//! * `--no-trace-cache` — do not persist/reuse binary trace blobs
//!   (`trace-<digest>.bin`) in the results cache; every run re-interprets.
//! * `--observe` — enable simulator cycle accounting: each cell's artifact
//!   entry gains `cycle_buckets` (every cycle attributed to exactly one
//!   cause; the buckets sum to `stats.cycles`) and `top_sites` (the branch
//!   sites costing the most mispredict-recovery cycles).
//! * `--trace-out <path>` — write a Chrome trace-event timeline of the job
//!   graph to `<path>`; load it at ui.perfetto.dev or `chrome://tracing`.
//! * `--no-compile` — use the per-entry interpreted simulator loop instead
//!   of the compiled block-descriptor engine.  Results (tables, stable
//!   artifacts, cycle buckets) are byte-identical; the two engines also
//!   share cache entries, so comparing them needs a cold cache.
//! * `--sample` (with `--sample-detail N`, `--sample-warm N`,
//!   `--sample-interval N`) — SMARTS-style interval sampling: per-cell
//!   `sampling` estimates (mean IPC ± 95% CI, estimated cycles) replace
//!   the exact whole-trace simulation.  Implies the compiled engine and
//!   fan-out; sampled cache entries live under their own keys.
//!
//! ## Results cache and artifacts
//!
//! Experiment-running binaries share a content-addressed cache at
//! `results/cache/<shard>/<stage>-<digest>.json`, keyed on the program
//! text, scale, driver options and machine configuration (see
//! `guardspec_harness::key`).  A warm rerun re-profiles and re-simulates
//! nothing; delete the directory to force recomputation.  Each run also
//! appends a `results/BENCH_<n>.json` artifact recording wall time, cache
//! hit/miss counts and per-stage timings (path reported on stderr).

use guardspec_core::{transform_program, DriverOptions, TransformReport};
use guardspec_harness::{ExperimentResult, HarnessArgs, RunOptions};
use guardspec_interp::profile::profile_program;
use guardspec_interp::{ExecResult, Profile};
use guardspec_predict::{measure_twobit_accuracy, Scheme};
use guardspec_sim::{simulate_trace, MachineConfig, SimStats};
use guardspec_workloads::{all_workloads, Scale, Workload};
use std::path::Path;

/// Parse the common flags; bad values report to stderr and exit(2).
pub fn harness_args() -> HarnessArgs {
    HarnessArgs::parse()
}

/// Parse `--scale` from argv; default Small.  Kept for compatibility —
/// delegates to the shared harness parser, so a bad value is a clean
/// stderr + exit(2), never a panic.
pub fn scale_from_args() -> Scale {
    harness_args().scale
}

/// [`RunOptions`] for the parsed flags, with the conventional cache root.
pub fn run_options(args: &HarnessArgs) -> RunOptions {
    RunOptions {
        jobs: args.jobs,
        cache_dir: Some(guardspec_harness::DEFAULT_CACHE_DIR.into()),
        stream: !args.no_stream,
        fanout: !args.no_fanout,
        trace_cache: !args.no_trace_cache,
        observe: args.observe,
        trace_spans: args.trace_out.is_some(),
        compile: !args.no_compile,
        sample: args.sample_params(),
        ..RunOptions::default()
    }
}

/// Emit the standard run artifacts: `results/BENCH_<n>.json` always, plus
/// `--json <path>` when requested.  Paths are reported on stderr so table
/// text on stdout stays clean.
pub fn finish_artifacts(result: &ExperimentResult, args: &HarnessArgs) {
    match guardspec_harness::emit_bench_artifact(
        Path::new(guardspec_harness::DEFAULT_RESULTS_DIR),
        result,
    ) {
        Ok(p) => eprintln!("[artifact] {}", p.display()),
        Err(e) => eprintln!("[artifact] write failed: {e}"),
    }
    if let Some(path) = &args.json {
        match guardspec_harness::write_json_file(path, &guardspec_harness::full_json(result)) {
            Ok(()) => eprintln!("[artifact] {}", path.display()),
            Err(e) => eprintln!("[artifact] {} write failed: {e}", path.display()),
        }
    }
    if let Some(path) = &args.stable_json {
        match guardspec_harness::write_json_file(path, &guardspec_harness::stable_json(result)) {
            Ok(()) => eprintln!("[artifact] {}", path.display()),
            Err(e) => eprintln!("[artifact] {} write failed: {e}", path.display()),
        }
    }
    if let Some(path) = &args.trace_out {
        let trace = guardspec_harness::chrome_trace_json(&result.spans, &result.metrics);
        match guardspec_harness::write_json_file(path, &trace) {
            Ok(()) => eprintln!("[trace] {}", path.display()),
            Err(e) => eprintln!("[trace] {} write failed: {e}", path.display()),
        }
    }
}

/// One workload simulated under one scheme.
pub struct SchemeRun {
    pub scheme: Scheme,
    pub stats: SimStats,
    pub exec: ExecResult,
    /// The transform report (Proposed scheme only).
    pub report: Option<TransformReport>,
}

/// Profile + (for Proposed) transform + simulate a workload under all three
/// schemes of Tables 3/4.  Panics if any version of the program stops
/// matching the workload's golden results — the harness never reports
/// numbers from a miscomputing kernel.
///
/// This is the direct (uncached, in-process) path used by the benches and
/// tests; the table binaries go through `guardspec_harness::run_experiment`
/// with an equivalent [`ExperimentSpec::three_schemes`] spec instead.
///
/// [`ExperimentSpec::three_schemes`]: guardspec_harness::ExperimentSpec::three_schemes
pub fn run_all_schemes(w: &Workload, cfg: &MachineConfig) -> Vec<SchemeRun> {
    let mut out = Vec::new();

    // Baseline profile (shared by Table 1 and the transform driver).
    let (profile, _) = profile_program(&w.program).expect("profile");

    for scheme in Scheme::ALL {
        let program = match scheme {
            Scheme::Proposed => {
                let mut p = w.program.clone();
                let report = transform_program(&mut p, &profile, &DriverOptions::proposed());
                guardspec_ir::validate::assert_valid(&p);
                out.push(run_one(w, p, scheme, cfg, Some(report)));
                continue;
            }
            _ => w.program.clone(),
        };
        out.push(run_one(w, program, scheme, cfg, None));
    }
    out
}

fn run_one(
    w: &Workload,
    program: guardspec_ir::Program,
    scheme: Scheme,
    cfg: &MachineConfig,
    report: Option<TransformReport>,
) -> SchemeRun {
    let (layout, trace, exec) = guardspec_interp::trace::trace_program(&program).expect("trace");
    let bad = w.verify(&exec.machine.mem);
    assert!(
        bad.is_empty(),
        "{} under {scheme:?} miscomputed: {bad:?}",
        w.name
    );
    let stats = simulate_trace(&program, &layout, &trace, scheme, cfg).expect("simulate");
    SchemeRun {
        scheme,
        stats,
        exec,
        report,
    }
}

/// Table 1 row data.
pub struct Table1Row {
    pub name: String,
    pub dynamic_millions: f64,
    pub branch_pct: f64,
    pub predicted_pct: f64,
}

/// Compute Table 1 for one workload: dynamic instructions, branch fraction,
/// and 2-bit prediction accuracy (replaying every conditional-branch
/// outcome through a fresh 512-entry table).
pub fn table1_row(w: &Workload) -> Table1Row {
    let (profile, _) = profile_program(&w.program).expect("profile");
    table1_row_from_profile(w, &profile)
}

/// [`table1_row`] from an already-available (e.g. cached) profile.
pub fn table1_row_from_profile(w: &Workload, profile: &Profile) -> Table1Row {
    let layout = guardspec_interp::StaticLayout::build(&w.program);
    let acc = twobit_accuracy_from_profile(profile, &layout);
    Table1Row {
        name: w.name.to_string(),
        dynamic_millions: profile.dynamic_millions(),
        branch_pct: 100.0 * profile.branch_fraction(),
        predicted_pct: 100.0 * acc,
    }
}

/// Replay the profiled outcome vectors through a 2-bit table, interleaving
/// by site in recorded order (per-site streams are independent in a
/// direct-mapped table unless they alias, which the replay preserves).
pub fn twobit_accuracy_from_profile(
    profile: &Profile,
    layout: &guardspec_interp::StaticLayout,
) -> f64 {
    let mut outcomes: Vec<(u64, bool)> = Vec::new();
    for (site, bp) in profile.branches() {
        let pc = layout.pc_of(site);
        for b in bp.outcomes.iter() {
            outcomes.push((pc, b));
        }
    }
    measure_twobit_accuracy(512, outcomes)
}

/// All workloads at a scale (re-exported for binaries).
pub fn workloads(scale: Scale) -> Vec<Workload> {
    all_workloads(scale)
}

// Render helpers ----------------------------------------------------------

pub fn hr(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_runs_verify_and_order_sanely() {
        let w = &workloads(Scale::Test)[3]; // grep: smallest
        let cfg = MachineConfig::r10000();
        let runs = run_all_schemes(w, &cfg);
        assert_eq!(runs.len(), 3);
        let ipc = |s: Scheme| runs.iter().find(|r| r.scheme == s).unwrap().stats.ipc();
        assert!(ipc(Scheme::Perfect) >= ipc(Scheme::TwoBit) * 0.99);
        assert!(runs.iter().all(|r| r.stats.committed > 0));
    }

    #[test]
    fn table1_row_shape() {
        let w = &workloads(Scale::Test)[0];
        let row = table1_row(w);
        assert!(row.dynamic_millions > 0.0);
        assert!(row.branch_pct > 5.0 && row.branch_pct < 40.0);
        assert!(row.predicted_pct > 50.0 && row.predicted_pct <= 100.0);
    }
}
