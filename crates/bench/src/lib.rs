//! # guardspec-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation.  Each binary prints one artifact:
//!
//! | binary     | artifact |
//! |------------|----------|
//! | `table1`   | Table 1 — benchmark characteristics |
//! | `table2`   | Table 2 — latencies |
//! | `table3`   | Table 3 — reservation-station usage under the three schemes |
//! | `table4`   | Table 4 — functional-unit usage and IPC |
//! | `figure2`  | Figure 2 — base/speculated/guarded schedule costs (3100/2900/3600) |
//! | `figure34` | Figures 3+4 — per-phase schedules and the 2756-cycle combined cost |
//! | `ablation` | individual/combined effects of each mechanism (the title question) |
//!
//! Pass `--scale test|small|paper` (default `small`; `paper` regenerates
//! the numbers quoted in EXPERIMENTS.md).

use guardspec_core::{transform_program, DriverOptions, TransformReport};
use guardspec_interp::profile::profile_program;
use guardspec_interp::{ExecResult, Profile};
use guardspec_predict::{measure_twobit_accuracy, Scheme};
use guardspec_sim::{simulate_trace, MachineConfig, SimStats};
use guardspec_workloads::{all_workloads, Scale, Workload};

/// Parse `--scale` from argv; default Small.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(|s| s.as_str()) {
            Some("test") => Scale::Test,
            Some("small") => Scale::Small,
            Some("paper") => Scale::Paper,
            other => panic!("bad --scale {other:?} (want test|small|paper)"),
        },
        None => Scale::Small,
    }
}

/// One workload simulated under one scheme.
pub struct SchemeRun {
    pub scheme: Scheme,
    pub stats: SimStats,
    pub exec: ExecResult,
    /// The transform report (Proposed scheme only).
    pub report: Option<TransformReport>,
}

/// Profile + (for Proposed) transform + simulate a workload under all three
/// schemes of Tables 3/4.  Panics if any version of the program stops
/// matching the workload's golden results — the harness never reports
/// numbers from a miscomputing kernel.
pub fn run_all_schemes(w: &Workload, cfg: &MachineConfig) -> Vec<SchemeRun> {
    let mut out = Vec::new();

    // Baseline profile (shared by Table 1 and the transform driver).
    let (profile, _) = profile_program(&w.program).expect("profile");

    for scheme in Scheme::ALL {
        let program = match scheme {
            Scheme::Proposed => {
                let mut p = w.program.clone();
                let report = transform_program(&mut p, &profile, &DriverOptions::proposed());
                guardspec_ir::validate::assert_valid(&p);
                out.push(run_one(w, p, scheme, cfg, Some(report)));
                continue;
            }
            _ => w.program.clone(),
        };
        out.push(run_one(w, program, scheme, cfg, None));
    }
    out
}

fn run_one(
    w: &Workload,
    program: guardspec_ir::Program,
    scheme: Scheme,
    cfg: &MachineConfig,
    report: Option<TransformReport>,
) -> SchemeRun {
    let (layout, trace, exec) =
        guardspec_interp::trace::trace_program(&program).expect("trace");
    let bad = w.verify(&exec.machine.mem);
    assert!(bad.is_empty(), "{} under {scheme:?} miscomputed: {bad:?}", w.name);
    let stats = simulate_trace(&program, &layout, &trace, scheme, cfg).expect("simulate");
    SchemeRun { scheme, stats, exec, report }
}

/// Table 1 row data.
pub struct Table1Row {
    pub name: String,
    pub dynamic_millions: f64,
    pub branch_pct: f64,
    pub predicted_pct: f64,
}

/// Compute Table 1 for one workload: dynamic instructions, branch fraction,
/// and 2-bit prediction accuracy (replaying every conditional-branch
/// outcome through a fresh 512-entry table).
pub fn table1_row(w: &Workload) -> Table1Row {
    let (profile, _) = profile_program(&w.program).expect("profile");
    let layout = guardspec_interp::StaticLayout::build(&w.program);
    let acc = twobit_accuracy_from_profile(&profile, &layout);
    Table1Row {
        name: w.name.to_string(),
        dynamic_millions: profile.dynamic_millions(),
        branch_pct: 100.0 * profile.branch_fraction(),
        predicted_pct: 100.0 * acc,
    }
}

/// Replay the profiled outcome vectors through a 2-bit table, interleaving
/// by site in recorded order (per-site streams are independent in a
/// direct-mapped table unless they alias, which the replay preserves).
pub fn twobit_accuracy_from_profile(
    profile: &Profile,
    layout: &guardspec_interp::StaticLayout,
) -> f64 {
    let mut outcomes: Vec<(u64, bool)> = Vec::new();
    for (site, bp) in &profile.branches {
        let pc = layout.pc_of(*site);
        for b in bp.outcomes.iter() {
            outcomes.push((pc, b));
        }
    }
    measure_twobit_accuracy(512, outcomes)
}

/// All workloads at a scale (re-exported for binaries).
pub fn workloads(scale: Scale) -> Vec<Workload> {
    all_workloads(scale)
}

/// Render helpers ---------------------------------------------------------

pub fn hr(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_runs_verify_and_order_sanely() {
        let w = &workloads(Scale::Test)[3]; // grep: smallest
        let cfg = MachineConfig::r10000();
        let runs = run_all_schemes(w, &cfg);
        assert_eq!(runs.len(), 3);
        let ipc = |s: Scheme| runs.iter().find(|r| r.scheme == s).unwrap().stats.ipc();
        assert!(ipc(Scheme::Perfect) >= ipc(Scheme::TwoBit) * 0.99);
        assert!(runs.iter().all(|r| r.stats.committed > 0));
    }

    #[test]
    fn table1_row_shape() {
        let w = &workloads(Scale::Test)[0];
        let row = table1_row(w);
        assert!(row.dynamic_millions > 0.0);
        assert!(row.branch_pct > 5.0 && row.branch_pct < 40.0);
        assert!(row.predicted_pct > 50.0 && row.predicted_pct <= 100.0);
    }
}
