//! Regenerates Table 4: functional-unit usage summary and IPC.

use guardspec_bench::{finish_artifacts, harness_args, hr, run_options};
use guardspec_harness::{run_experiment, ExperimentSpec};
use guardspec_ir::FuClass;

fn main() {
    let args = harness_args();
    let scale = args.scale;
    let spec = ExperimentSpec::three_schemes("table4", scale);
    let result = run_experiment(&spec, &run_options(&args));
    println!("Table 4: Functional Unit Usage Summary and IPC (scale {scale:?})");
    println!("(% of cycles all units of a class are busy; IPC excludes annulled)");
    hr(112);
    println!(
        "{:<12} | {:>7} {:>7} {:>6} {:>6} | {:>7} {:>7} {:>6} {:>6} | {:>7} {:>7} {:>6} {:>6}",
        "", "ALU", "LDST", "SFT", "IPC", "ALU", "LDST", "SFT", "IPC", "ALU", "LDST", "SFT", "IPC"
    );
    println!(
        "{:<12} | {:^29} | {:^29} | {:^29}",
        "Benchmark", "2-bit BP", "Proposed", "Perfect BP"
    );
    hr(112);
    let mut ratios = Vec::new();
    for w in &result.workloads {
        let runs: Vec<_> = result.cells_for(&w.name).collect();
        print!("{:<12}", w.name);
        for r in &runs {
            print!(
                " | {:>7.2} {:>7.2} {:>6.2} {:>6.2}",
                r.stats.fu_full_pct(FuClass::Alu),
                r.stats.fu_full_pct(FuClass::LoadStore),
                r.stats.fu_full_pct(FuClass::Shift),
                r.stats.ipc(),
            );
        }
        println!();
        let base = runs[0].stats.ipc();
        let prop = runs[1].stats.ipc();
        ratios.push((w.name.clone(), prop / base));
    }
    hr(112);
    println!("Proposed / 2-bit IPC ratios (paper reports 1.5-2.0x):");
    for (name, ratio) in ratios {
        println!("  {name:<12} {ratio:.2}x");
    }
    finish_artifacts(&result, &args);
}
