//! Regenerates Table 4: functional-unit usage summary and IPC.

use guardspec_bench::{hr, run_all_schemes, scale_from_args, workloads};
use guardspec_ir::FuClass;
use guardspec_sim::MachineConfig;

fn main() {
    let scale = scale_from_args();
    let cfg = MachineConfig::r10000();
    println!("Table 4: Functional Unit Usage Summary and IPC (scale {scale:?})");
    println!("(% of cycles all units of a class are busy; IPC excludes annulled)");
    hr(112);
    println!(
        "{:<12} | {:>7} {:>7} {:>6} {:>6} | {:>7} {:>7} {:>6} {:>6} | {:>7} {:>7} {:>6} {:>6}",
        "", "ALU", "LDST", "SFT", "IPC", "ALU", "LDST", "SFT", "IPC", "ALU", "LDST", "SFT", "IPC"
    );
    println!(
        "{:<12} | {:^29} | {:^29} | {:^29}",
        "Benchmark", "2-bit BP", "Proposed", "Perfect BP"
    );
    hr(112);
    let mut ratios = Vec::new();
    for w in workloads(scale) {
        let runs = run_all_schemes(&w, &cfg);
        print!("{:<12}", w.name);
        for r in &runs {
            print!(
                " | {:>7.2} {:>7.2} {:>6.2} {:>6.2}",
                r.stats.fu_full_pct(FuClass::Alu),
                r.stats.fu_full_pct(FuClass::LoadStore),
                r.stats.fu_full_pct(FuClass::Shift),
                r.stats.ipc(),
            );
        }
        println!();
        let base = runs[0].stats.ipc();
        let prop = runs[1].stats.ipc();
        ratios.push((w.name.to_string(), prop / base));
    }
    hr(112);
    println!("Proposed / 2-bit IPC ratios (paper reports 1.5-2.0x):");
    for (name, ratio) in ratios {
        println!("  {name:<12} {ratio:.2}x");
    }
}
