//! The title question: *individual vs combined* effects of speculative and
//! guarded execution.  Runs every driver preset over every workload and
//! reports IPC + misprediction rate per configuration.

use guardspec_bench::{finish_artifacts, harness_args, hr, run_options};
use guardspec_harness::{run_experiment, ExperimentSpec};

fn main() {
    let args = harness_args();
    let scale = args.scale;
    let spec = ExperimentSpec::ablation("ablation", scale);
    let result = run_experiment(&spec, &run_options(&args));
    println!("Ablation: individual/combined effects (scale {scale:?})");
    hr(96);
    println!(
        "{:<12} {:<14} {:>7} {:>10} {:>9} {:>8} {:>8} {:>8}",
        "Benchmark", "Config", "IPC", "Cycles", "Mispred", "Likely", "IfConv", "Splits"
    );
    hr(96);
    for w in &result.workloads {
        for cell in result.cells_for(&w.name) {
            let report = cell.report.as_ref().expect("ablation cells all transform");
            println!(
                "{:<12} {:<14} {:>7.3} {:>10} {:>9} {:>8} {:>8} {:>8}",
                w.name,
                cell.label,
                cell.stats.ipc(),
                cell.stats.cycles,
                cell.stats.mispredicts,
                report.likelies,
                report.ifconversions,
                report.splits
            );
        }
        hr(96);
    }
    finish_artifacts(&result, &args);
}
