//! The title question: *individual vs combined* effects of speculative and
//! guarded execution.  Runs every driver preset over every workload and
//! reports IPC + misprediction rate per configuration.

use guardspec_bench::{hr, scale_from_args, workloads};
use guardspec_core::{transform_program, DriverOptions};
use guardspec_interp::profile::profile_program;
use guardspec_predict::Scheme;
use guardspec_sim::{simulate_trace, MachineConfig};

fn main() {
    let scale = scale_from_args();
    let cfg = MachineConfig::r10000();
    let presets: [(&str, DriverOptions); 5] = [
        ("baseline", DriverOptions::baseline()),
        ("speculation", DriverOptions::speculation_only()),
        ("guarded", DriverOptions::guarded_only()),
        ("conventional", DriverOptions::conventional()),
        ("proposed", DriverOptions::proposed()),
    ];
    println!("Ablation: individual/combined effects (scale {scale:?})");
    hr(96);
    println!(
        "{:<12} {:<14} {:>7} {:>10} {:>9} {:>8} {:>8} {:>8}",
        "Benchmark", "Config", "IPC", "Cycles", "Mispred", "Likely", "IfConv", "Splits"
    );
    hr(96);
    for w in workloads(scale) {
        let (profile, _) = profile_program(&w.program).expect("profile");
        for (name, opts) in &presets {
            let mut p = w.program.clone();
            let report = transform_program(&mut p, &profile, opts);
            let (layout, trace, exec) =
                guardspec_interp::trace::trace_program(&p).expect("trace");
            let bad = w.verify(&exec.machine.mem);
            assert!(bad.is_empty(), "{}/{name} miscomputed: {bad:?}", w.name);
            let scheme =
                if *name == "baseline" { Scheme::TwoBit } else { Scheme::Proposed };
            let stats = simulate_trace(&p, &layout, &trace, scheme, &cfg).expect("sim");
            println!(
                "{:<12} {:<14} {:>7.3} {:>10} {:>9} {:>8} {:>8} {:>8}",
                w.name,
                name,
                stats.ipc(),
                stats.cycles,
                stats.mispredicts,
                report.likelies,
                report.ifconversions,
                report.splits
            );
        }
        hr(96);
    }
}
