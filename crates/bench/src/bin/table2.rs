//! Regenerates Table 2: operation latencies of the machine model.
//!
//! Purely static (no workloads run), but accepts the common flags; with
//! `--json <path>` the latency table is written as JSON.

use guardspec_bench::{harness_args, hr};
use guardspec_harness::Json;
use guardspec_sim::Latencies;

fn main() {
    let args = harness_args();
    let l = Latencies::table2();
    println!("Table 2: Latencies");
    hr(34);
    println!("{:<22} {:>10}", "Instruction", "Latency");
    hr(34);
    println!("{:<22} {:>10}", "alu", l.alu);
    println!("{:<22} {:>10}", "ld/st", l.ldst);
    println!("{:<22} {:>10}", "sft", l.sft);
    println!("{:<22} {:>10}", "fp add", l.fp_add);
    println!("{:<22} {:>10}", "fp mul", l.fp_mul);
    println!("{:<22} {:>10}", "fp div", l.fp_div);
    println!("{:<22} {:>10}", "cache miss penalty", l.cache_miss_penalty);
    hr(34);
    println!("(identical to the paper's Table 2 by construction)");
    if let Some(path) = &args.json {
        let json = Json::obj(vec![
            ("table", Json::str("table2")),
            ("alu", Json::U64(l.alu)),
            ("ldst", Json::U64(l.ldst)),
            ("sft", Json::U64(l.sft)),
            ("fp_add", Json::U64(l.fp_add)),
            ("fp_mul", Json::U64(l.fp_mul)),
            ("fp_div", Json::U64(l.fp_div)),
            ("cache_miss_penalty", Json::U64(l.cache_miss_penalty)),
        ]);
        match guardspec_harness::write_json_file(path, &json) {
            Ok(()) => eprintln!("[artifact] {}", path.display()),
            Err(e) => eprintln!("[artifact] {} write failed: {e}", path.display()),
        }
    }
}
