//! Regenerates Table 2: operation latencies of the machine model.

use guardspec_bench::hr;
use guardspec_sim::Latencies;

fn main() {
    let l = Latencies::table2();
    println!("Table 2: Latencies");
    hr(34);
    println!("{:<22} {:>10}", "Instruction", "Latency");
    hr(34);
    println!("{:<22} {:>10}", "alu", l.alu);
    println!("{:<22} {:>10}", "ld/st", l.ldst);
    println!("{:<22} {:>10}", "sft", l.sft);
    println!("{:<22} {:>10}", "fp add", l.fp_add);
    println!("{:<22} {:>10}", "fp mul", l.fp_mul);
    println!("{:<22} {:>10}", "fp div", l.fp_div);
    println!("{:<22} {:>10}", "cache miss penalty", l.cache_miss_penalty);
    hr(34);
    println!("(identical to the paper's Table 2 by construction)");
}
