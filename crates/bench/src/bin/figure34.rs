//! Regenerates Figures 3 and 4: per-phase schedules and the combined
//! 2756-cycle split-branch cost.
//!
//! Purely analytic (no workloads run), but accepts the common flags; with
//! `--json <path>` the phase costs are written as JSON.

use guardspec_bench::{harness_args, hr};
use guardspec_core::DiamondCfg;
use guardspec_harness::Json;

fn main() {
    let args = harness_args();
    let d = DiamondCfg::figure2();
    let phases = [(0.4, 0.95), (0.2, 0.5), (0.4, 0.05)];
    println!("Figures 3+4: phase-split schedules for the running example");
    println!("(iteration space: 40% taken-biased, 20% toggling, 40% not-taken-biased)");
    hr(72);
    for (i, &(frac, p)) in phases.iter().enumerate() {
        println!(
            "  phase {} ({:>3.0}% of space, taken rate {:.2}): {:>6.2} cycles/iter",
            ["I", "II", "III"][i],
            frac * 100.0,
            p,
            d.per_iter_phase_plan(p, 0.9)
        );
    }
    let total = d.segmented_cost(&phases, 0.9);
    hr(72);
    println!("  combined split-branch schedule: {total:>7.0} cycles (paper: 2756)");
    println!(
        "  vs one-time-metric speculation: {:>7.0} cycles (paper: 2900)",
        d.speculated_cost(0.5)
    );
    println!(
        "  improvement: {:.1}%",
        100.0 * (1.0 - total / d.speculated_cost(0.5))
    );
    if let Some(path) = &args.json {
        let phase_json = phases
            .iter()
            .map(|&(frac, p)| {
                Json::obj(vec![
                    ("fraction", Json::F64(frac)),
                    ("taken_rate", Json::F64(p)),
                    ("cycles_per_iter", Json::F64(d.per_iter_phase_plan(p, 0.9))),
                ])
            })
            .collect();
        let json = Json::obj(vec![
            ("figure", Json::str("figure34")),
            ("phases", Json::Arr(phase_json)),
            ("combined_cycles", Json::F64(total)),
            ("speculated_cycles", Json::F64(d.speculated_cost(0.5))),
        ]);
        match guardspec_harness::write_json_file(path, &json) {
            Ok(()) => eprintln!("[artifact] {}", path.display()),
            Err(e) => eprintln!("[artifact] {} write failed: {e}", path.display()),
        }
    }
}
