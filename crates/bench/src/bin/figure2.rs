//! Regenerates Figure 2: the schedule-cost example — base 3100, speculated
//! 2900, guarded 3600 cycles.
//!
//! Purely analytic (no workloads run), but accepts the common flags; with
//! `--json <path>` the three costs are written as JSON.

use guardspec_bench::{harness_args, hr};
use guardspec_core::DiamondCfg;
use guardspec_harness::Json;

fn main() {
    let args = harness_args();
    let d = DiamondCfg::figure2();
    println!("Figure 2: schedule costs for the running example");
    println!("(B1=10 cycles/4 slots, B2=13, B3=5, B4=12; 100 iterations, 50/50 branch)");
    hr(64);
    println!(
        "  (b) base schedule:        {:>7.0} cycles (paper: 3100)",
        d.base_cost(0.5)
    );
    println!(
        "  (c) after speculation:    {:>7.0} cycles (paper: 2900)",
        d.speculated_cost(0.5)
    );
    println!(
        "  (d) after guarded exec:   {:>7.0} cycles (paper: 3600)",
        d.guarded_cost()
    );
    hr(64);
    println!("Guarded execution LOSES here: the paper's warning that it \"should");
    println!("not be employed when the disparities between schedule lengths for");
    println!("two mutually exclusive paths are high\".");
    if let Some(path) = &args.json {
        let json = Json::obj(vec![
            ("figure", Json::str("figure2")),
            ("base_cycles", Json::F64(d.base_cost(0.5))),
            ("speculated_cycles", Json::F64(d.speculated_cost(0.5))),
            ("guarded_cycles", Json::F64(d.guarded_cost())),
        ]);
        match guardspec_harness::write_json_file(path, &json) {
            Ok(()) => eprintln!("[artifact] {}", path.display()),
            Err(e) => eprintln!("[artifact] {} write failed: {e}", path.display()),
        }
    }
}
