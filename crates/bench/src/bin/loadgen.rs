//! `loadgen` — drives an embedded `gsd` server with concurrent clients and
//! writes `results/BENCH_35.json`: requests/sec, p50/p95/p99/max latency
//! (from the same log-linear [`Histogram`] the daemon exports on
//! `/metrics`), dedup ratio, connection accounting, and cold- vs
//! warm-cache behaviour of the service layer under three transport modes
//! — close-per-request (the before), HTTP/1.1 keep-alive, and bounded
//! pipelining (the after).
//!
//! The server runs in-process on an ephemeral port with a scratch cache,
//! so the numbers measure the daemon (epoll loop + dedup + queue +
//! runner), not network weather.  Each client cycles through a small set
//! of distinct sweeps; with more clients than distinct sweeps, concurrent
//! duplicates dedup into shared flights (the `dedup_ratio` reported).
//! After the cold pass populates the cache, three warm passes replay the
//! same mix: once closing the connection per request, once on keep-alive
//! connections, once pipelined.  The file is overwritten on purpose: it
//! is the PR's evidence artifact, not a per-run log.
//!
//! ```text
//! loadgen [--scale test|small|paper] [--clients N] [--requests R]
//!         [--workers W] [--keep-alive] [--pipeline N] [--out PATH]
//! ```
//!
//! `--keep-alive` makes the *cold* pass reuse connections too (default:
//! close per request, comparable to the historical BENCH_6 numbers);
//! `--pipeline N` sets the warm pipelined pass's batch depth (default 4).
//! Unknown flags print the offending flag and exit 2.

use guardspec_harness::args::{parse_scale, take_value, unknown_argument};
use guardspec_harness::{json, write_json_file, Histogram, Json};
use guardspec_server::http::{self, ClientConn};
use guardspec_server::protocol::{ablation_request, request_to_json, three_schemes_request};
use guardspec_server::{Server, ServerConfig};
use guardspec_workloads::Scale;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Debug)]
struct Args {
    scale: Scale,
    clients: usize,
    requests: usize,
    workers: usize,
    keep_alive: bool,
    pipeline: usize,
    out: PathBuf,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        scale: Scale::Test,
        clients: 4,
        requests: 8,
        workers: 2,
        keep_alive: false,
        pipeline: 4,
        out: PathBuf::from("results/BENCH_35.json"),
    };
    let mut args: Box<dyn Iterator<Item = String>> = Box::new(argv);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => parsed.scale = parse_scale(&take_value(&mut args, "--scale")?)?,
            "--clients" => {
                let v = take_value(&mut args, "--clients")?;
                parsed.clients = v.parse().map_err(|_| format!("bad --clients {v:?}"))?;
            }
            "--requests" => {
                let v = take_value(&mut args, "--requests")?;
                parsed.requests = v.parse().map_err(|_| format!("bad --requests {v:?}"))?;
            }
            "--workers" => {
                let v = take_value(&mut args, "--workers")?;
                parsed.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
            }
            "--keep-alive" => parsed.keep_alive = true,
            "--pipeline" => {
                let v = take_value(&mut args, "--pipeline")?;
                parsed.pipeline = v.parse().map_err(|_| format!("bad --pipeline {v:?}"))?;
            }
            "--out" => parsed.out = PathBuf::from(take_value(&mut args, "--out")?),
            other => return Err(unknown_argument(other)),
        }
    }
    if parsed.clients == 0 || parsed.requests == 0 {
        return Err("--clients and --requests must be positive".to_string());
    }
    if parsed.pipeline == 0 {
        return Err("--pipeline must be positive".to_string());
    }
    Ok(parsed)
}

/// How a client pass talks to the server.
#[derive(Clone, Copy, Debug)]
enum Mode {
    /// One fresh connection per request (`Connection: close`).
    Close,
    /// One keep-alive connection per client for the whole pass.
    KeepAlive,
    /// Keep-alive + batches of N pipelined requests.  Per-request latency
    /// is the batch wall time divided by the batch size (requests in a
    /// batch are not individually timeable on one socket).
    Pipeline(usize),
}

impl Mode {
    fn tag(self) -> &'static str {
        match self {
            Mode::Close => "close",
            Mode::KeepAlive => "keep-alive",
            Mode::Pipeline(_) => "pipelined",
        }
    }
}

/// One measured pass: every client posts its share of the mix; returns
/// per-request latencies (ms), the pass's wall time (ms), and how many
/// TCP connections the clients opened.
fn drive(
    addr: &str,
    mix: &[String],
    clients: usize,
    requests: usize,
    mode: Mode,
) -> (Vec<f64>, f64, u64) {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let mix: Vec<String> = mix.to_vec();
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(requests);
                match mode {
                    Mode::Close => {
                        for r in 0..requests {
                            let body = &mix[(c + r) % mix.len()];
                            let t0 = Instant::now();
                            let (status, resp) =
                                http::post_json(&addr, "/run", body).expect("request failed");
                            assert_eq!(status, 200, "unexpected {status}: {resp}");
                            lat.push(t0.elapsed().as_secs_f64() * 1000.0);
                        }
                        (lat, requests as u64)
                    }
                    Mode::KeepAlive => {
                        let mut conn = ClientConn::new(&addr);
                        for r in 0..requests {
                            let body = &mix[(c + r) % mix.len()];
                            let t0 = Instant::now();
                            let resp = conn
                                .request("POST", "/run", body.as_bytes())
                                .expect("request failed");
                            assert_eq!(resp.status, 200);
                            lat.push(t0.elapsed().as_secs_f64() * 1000.0);
                        }
                        (lat, conn.connections_opened())
                    }
                    Mode::Pipeline(depth) => {
                        let mut conn = ClientConn::new(&addr);
                        let order: Vec<&String> =
                            (0..requests).map(|r| &mix[(c + r) % mix.len()]).collect();
                        for batch in order.chunks(depth) {
                            let reqs: Vec<(&str, &str, &[u8])> = batch
                                .iter()
                                .map(|b| ("POST", "/run", b.as_bytes()))
                                .collect();
                            let t0 = Instant::now();
                            let responses = conn.pipeline(&reqs).expect("pipeline failed");
                            let per_req = t0.elapsed().as_secs_f64() * 1000.0 / batch.len() as f64;
                            for resp in &responses {
                                assert_eq!(resp.status, 200);
                                lat.push(per_req);
                            }
                        }
                        (lat, conn.connections_opened())
                    }
                }
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(clients * requests);
    let mut conns = 0u64;
    for h in handles {
        let (lat, opened) = h.join().expect("client thread panicked");
        latencies.extend(lat);
        conns += opened;
    }
    (latencies, started.elapsed().as_secs_f64() * 1000.0, conns)
}

/// Per-pass summary: throughput plus histogram-derived latency quantiles.
struct PassStats {
    json: Json,
    rps: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    max: f64,
}

/// Fold per-request latencies into the harness's log-linear [`Histogram`]
/// — the same bucket layout the daemon exports on `/metrics` — and read
/// the quantiles back out (upper bucket bounds, so each estimate is ≥ the
/// true order statistic and at most ×1.4145 above it; `max` is exact).
fn pass_stats(mode: Mode, latencies: &[f64], wall_ms: f64, conns: u64) -> PassStats {
    let hist = Histogram::new();
    for &ms in latencies {
        hist.record((ms * 1e6) as u64);
    }
    let q = |p: f64| hist.quantile(p).unwrap_or(0) as f64 / 1e6;
    let (p50, p95, p99) = (q(0.50), q(0.95), q(0.99));
    let max = hist.max() as f64 / 1e6;
    let rps = latencies.len() as f64 / (wall_ms / 1000.0);
    let json = Json::obj(vec![
        ("mode", Json::str(mode.tag())),
        ("requests", Json::U64(latencies.len() as u64)),
        ("wall_ms", Json::F64(wall_ms)),
        ("requests_per_sec", Json::F64(rps)),
        ("p50_ms", Json::F64(p50)),
        ("p95_ms", Json::F64(p95)),
        ("p99_ms", Json::F64(p99)),
        ("max_ms", Json::F64(max)),
        ("histogram_count", Json::U64(hist.count())),
        ("histogram_sum_ms", Json::F64(hist.sum() as f64 / 1e6)),
        ("client_connections_opened", Json::U64(conns)),
    ]);
    PassStats {
        json,
        rps,
        p50,
        p95,
        p99,
        max,
    }
}

fn metric(metrics_body: &str, path: &[&str]) -> u64 {
    let mut j = json::parse(metrics_body).expect("metrics parse");
    for p in path {
        match j.get(p) {
            Some(inner) => j = inner.clone(),
            None => return 0,
        }
    }
    j.as_u64().unwrap_or(0)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let cache_dir = std::env::temp_dir().join(format!("guardspec-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let handle = Server::start(ServerConfig {
        cache_dir: Some(cache_dir.clone()),
        workers: args.workers,
        queue_cap: args.clients * args.requests + 8,
        ..ServerConfig::default()
    })
    .expect("server start");
    let addr = handle.addr().to_string();

    // The request mix: two sweep shapes at the chosen scale.  Fewer
    // distinct requests than clients means concurrent duplicates dedup.
    let mix: Vec<String> = [
        request_to_json(&three_schemes_request("table3", args.scale)),
        request_to_json(&ablation_request("ablation", args.scale)),
    ]
    .iter()
    .map(Json::to_compact)
    .collect();

    let cold_mode = if args.keep_alive {
        Mode::KeepAlive
    } else {
        Mode::Close
    };
    eprintln!(
        "loadgen: {} clients x {} requests, {} workers, scale {:?}, cold mode {}, server {addr}",
        args.clients,
        args.requests,
        args.workers,
        args.scale,
        cold_mode.tag()
    );

    let (cold_lat, cold_wall, cold_conns) =
        drive(&addr, &mix, args.clients, args.requests, cold_mode);
    let (_, cold_metrics) = http::get_json(&addr, "/metrics").expect("metrics");
    let (wc_lat, wc_wall, wc_conns) = drive(&addr, &mix, args.clients, args.requests, Mode::Close);
    let (wk_lat, wk_wall, wk_conns) =
        drive(&addr, &mix, args.clients, args.requests, Mode::KeepAlive);
    let (wp_lat, wp_wall, wp_conns) = drive(
        &addr,
        &mix,
        args.clients,
        args.requests,
        Mode::Pipeline(args.pipeline),
    );
    let (_, final_metrics) = http::get_json(&addr, "/metrics").expect("metrics");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);

    let cold = pass_stats(cold_mode, &cold_lat, cold_wall, cold_conns);
    let wc = pass_stats(Mode::Close, &wc_lat, wc_wall, wc_conns);
    let wk = pass_stats(Mode::KeepAlive, &wk_lat, wk_wall, wk_conns);
    let wp = pass_stats(Mode::Pipeline(args.pipeline), &wp_lat, wp_wall, wp_conns);

    let run = metric(&cold_metrics, &["counters", "requests.run"]);
    let joined = metric(&cold_metrics, &["counters", "dedup.joined"]);
    let executed = metric(&final_metrics, &["counters", "jobs.executed"]);
    let dedup_ratio = if run > 0 {
        joined as f64 / run as f64
    } else {
        0.0
    };

    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "metric", "cold", "warm/close", "warm/ka", "warm/pipe"
    );
    let row = |name: &str, a: f64, b: f64, c: f64, d: f64| {
        println!("{name:<22} {a:>12.2} {b:>12.2} {c:>12.2} {d:>12.2}")
    };
    row("requests/sec", cold.rps, wc.rps, wk.rps, wp.rps);
    row("p50 latency (ms)", cold.p50, wc.p50, wk.p50, wp.p50);
    row("p95 latency (ms)", cold.p95, wc.p95, wk.p95, wp.p95);
    row("p99 latency (ms)", cold.p99, wc.p99, wk.p99, wp.p99);
    row("max latency (ms)", cold.max, wc.max, wk.max, wp.max);
    println!(
        "dedup: {joined}/{run} cold requests joined an in-flight duplicate ({:.0}%), {executed} jobs executed",
        dedup_ratio * 100.0
    );
    println!(
        "connections: server opened {} / reused {}, pipeline depth max {}",
        metric(&final_metrics, &["counters", "connections.opened"]),
        metric(&final_metrics, &["counters", "connections.reused"]),
        metric(&final_metrics, &["counters", "pipeline.depth_max"]),
    );

    let json = Json::obj(vec![
        (
            "meta",
            Json::obj(vec![
                ("bench", Json::str("loadgen")),
                ("scale", Json::str(format!("{:?}", args.scale))),
                ("clients", Json::U64(args.clients as u64)),
                ("requests_per_client", Json::U64(args.requests as u64)),
                ("workers", Json::U64(args.workers as u64)),
                ("pipeline_depth", Json::U64(args.pipeline as u64)),
                ("mix", Json::str("table3 + ablation, alternating")),
            ]),
        ),
        ("cold", cold.json),
        ("warm_close", wc.json),
        ("warm_keep_alive", wk.json),
        ("warm_pipelined", wp.json),
        (
            "dedup",
            Json::obj(vec![
                ("requests", Json::U64(run)),
                ("joined", Json::U64(joined)),
                ("jobs_executed", Json::U64(executed)),
                ("ratio", Json::F64(dedup_ratio)),
            ]),
        ),
        (
            "connections",
            Json::obj(vec![
                (
                    "server_opened",
                    Json::U64(metric(&final_metrics, &["counters", "connections.opened"])),
                ),
                (
                    "server_reused",
                    Json::U64(metric(&final_metrics, &["counters", "connections.reused"])),
                ),
                (
                    "pipeline_depth_max",
                    Json::U64(metric(&final_metrics, &["counters", "pipeline.depth_max"])),
                ),
            ]),
        ),
        (
            "cache",
            Json::obj(vec![
                (
                    "hits_after_cold",
                    Json::U64(metric(&cold_metrics, &["cache_hits"])),
                ),
                (
                    "hits_final",
                    Json::U64(metric(&final_metrics, &["cache_hits"])),
                ),
                (
                    "misses_final",
                    Json::U64(metric(&final_metrics, &["cache_misses"])),
                ),
                (
                    "resp_cached",
                    Json::U64(metric(&final_metrics, &["counters", "jobs.resp_cached"])),
                ),
                (
                    "race_lost",
                    Json::U64(metric(&final_metrics, &["cache_race_lost"])),
                ),
            ]),
        ),
    ]);
    write_json_file(&args.out, &json).expect("write artifact");
    eprintln!("loadgen: wrote {}", args.out.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_flags_are_rejected_by_name() {
        let err = parse_args(["--warp".to_string()].into_iter()).unwrap_err();
        assert!(err.contains("--warp"), "{err}");
    }

    #[test]
    fn transport_flags_parse() {
        let a = parse_args(
            ["--keep-alive", "--pipeline", "8"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(a.keep_alive);
        assert_eq!(a.pipeline, 8);
        assert!(a.out.ends_with("BENCH_35.json"));
        assert!(parse_args(["--pipeline".to_string(), "0".to_string()].into_iter()).is_err());
    }

    #[test]
    fn histogram_quantiles_bracket_the_exact_order_statistics() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64).collect(); // 1..100 ms
        let stats = pass_stats(Mode::Close, &lat, 1000.0, 0);
        assert_eq!(stats.max, 100.0, "max is exact");
        // Each histogram quantile is ≥ the exact rank and at most
        // ×HIST_MAX_RATIO above it.
        for (got, exact) in [(stats.p50, 50.0), (stats.p95, 95.0), (stats.p99, 99.0)] {
            assert!(
                got >= exact && got <= exact * guardspec_harness::HIST_MAX_RATIO,
                "{got} vs exact {exact}"
            );
        }
        assert!(stats.rps > 0.0);
    }
}
