//! `loadgen` — drives an embedded `gsd` server with concurrent clients and
//! writes `results/BENCH_6.json`: requests/sec, p50/p99 latency, dedup
//! ratio, and cold- vs warm-cache behaviour of the service layer.
//!
//! The server runs in-process on an ephemeral port with a scratch cache,
//! so the numbers measure the daemon (HTTP + dedup + queue + runner), not
//! network weather.  Each client cycles through a small set of distinct
//! sweeps; with more clients than distinct sweeps, concurrent duplicates
//! dedup into shared flights (the `dedup_ratio` reported), and the warm
//! pass replays the same mix against the now-populated cache.  The file is
//! overwritten on purpose: it is the PR's evidence artifact, not a per-run
//! log.
//!
//! ```text
//! loadgen [--scale test|small|paper] [--clients N] [--requests R]
//!         [--workers W] [--out PATH]
//! ```
//!
//! Unknown flags print the offending flag and exit 2.

use guardspec_harness::args::{parse_scale, take_value, unknown_argument};
use guardspec_harness::{json, write_json_file, Json};
use guardspec_server::http;
use guardspec_server::protocol::{ablation_request, request_to_json, three_schemes_request};
use guardspec_server::{Server, ServerConfig};
use guardspec_workloads::Scale;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Debug)]
struct Args {
    scale: Scale,
    clients: usize,
    requests: usize,
    workers: usize,
    out: PathBuf,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        scale: Scale::Test,
        clients: 4,
        requests: 8,
        workers: 2,
        out: PathBuf::from("results/BENCH_6.json"),
    };
    let mut args: Box<dyn Iterator<Item = String>> = Box::new(argv);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => parsed.scale = parse_scale(&take_value(&mut args, "--scale")?)?,
            "--clients" => {
                let v = take_value(&mut args, "--clients")?;
                parsed.clients = v.parse().map_err(|_| format!("bad --clients {v:?}"))?;
            }
            "--requests" => {
                let v = take_value(&mut args, "--requests")?;
                parsed.requests = v.parse().map_err(|_| format!("bad --requests {v:?}"))?;
            }
            "--workers" => {
                let v = take_value(&mut args, "--workers")?;
                parsed.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
            }
            "--out" => parsed.out = PathBuf::from(take_value(&mut args, "--out")?),
            other => return Err(unknown_argument(other)),
        }
    }
    if parsed.clients == 0 || parsed.requests == 0 {
        return Err("--clients and --requests must be positive".to_string());
    }
    Ok(parsed)
}

/// One measured pass: every client posts its share of the mix; returns
/// per-request latencies (ms) and the pass's wall time (ms).
fn drive(addr: &str, mix: &[String], clients: usize, requests: usize) -> (Vec<f64>, f64) {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let mix: Vec<String> = mix.to_vec();
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(requests);
                for r in 0..requests {
                    let body = &mix[(c + r) % mix.len()];
                    let t0 = Instant::now();
                    let (status, resp) =
                        http::post_json(&addr, "/run", body).expect("request failed");
                    assert_eq!(status, 200, "unexpected {status}: {resp}");
                    lat.push(t0.elapsed().as_secs_f64() * 1000.0);
                }
                lat
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(clients * requests);
    for h in handles {
        latencies.extend(h.join().expect("client thread panicked"));
    }
    (latencies, started.elapsed().as_secs_f64() * 1000.0)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn pass_json(latencies: &mut [f64], wall_ms: f64) -> (Json, f64, f64, f64) {
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(latencies, 0.50);
    let p99 = percentile(latencies, 0.99);
    let req_s = latencies.len() as f64 / (wall_ms / 1000.0);
    let j = Json::obj(vec![
        ("requests", Json::U64(latencies.len() as u64)),
        ("wall_ms", Json::F64(wall_ms)),
        ("requests_per_sec", Json::F64(req_s)),
        ("p50_ms", Json::F64(p50)),
        ("p99_ms", Json::F64(p99)),
    ]);
    (j, req_s, p50, p99)
}

fn metric(metrics_body: &str, path: &[&str]) -> u64 {
    let mut j = json::parse(metrics_body).expect("metrics parse");
    for p in path {
        match j.get(p) {
            Some(inner) => j = inner.clone(),
            None => return 0,
        }
    }
    j.as_u64().unwrap_or(0)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let cache_dir = std::env::temp_dir().join(format!("guardspec-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let handle = Server::start(ServerConfig {
        cache_dir: Some(cache_dir.clone()),
        workers: args.workers,
        queue_cap: args.clients * args.requests + 8,
        ..ServerConfig::default()
    })
    .expect("server start");
    let addr = handle.addr().to_string();

    // The request mix: two sweep shapes at the chosen scale.  Fewer
    // distinct requests than clients means concurrent duplicates dedup.
    let mix: Vec<String> = [
        request_to_json(&three_schemes_request("table3", args.scale)),
        request_to_json(&ablation_request("ablation", args.scale)),
    ]
    .iter()
    .map(Json::to_compact)
    .collect();

    eprintln!(
        "loadgen: {} clients x {} requests, {} workers, scale {:?}, server {addr}",
        args.clients, args.requests, args.workers, args.scale
    );
    let (mut cold_lat, cold_wall) = drive(&addr, &mix, args.clients, args.requests);
    let (_, cold_metrics) = http::get(&addr, "/metrics").expect("metrics");
    let (mut warm_lat, warm_wall) = drive(&addr, &mix, args.clients, args.requests);
    let (_, warm_metrics) = http::get(&addr, "/metrics").expect("metrics");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);

    let (cold_json, cold_rps, cold_p50, cold_p99) = pass_json(&mut cold_lat, cold_wall);
    let (warm_json, warm_rps, warm_p50, warm_p99) = pass_json(&mut warm_lat, warm_wall);
    let run = metric(&warm_metrics, &["counters", "requests.run"]);
    let joined = metric(&warm_metrics, &["counters", "dedup.joined"]);
    let executed = metric(&warm_metrics, &["counters", "jobs.executed"]);
    let dedup_ratio = if run > 0 {
        joined as f64 / run as f64
    } else {
        0.0
    };

    println!("{:<26} {:>12} {:>12}", "metric", "cold", "warm");
    let row = |name: &str, c: f64, w: f64| println!("{name:<26} {c:>12.2} {w:>12.2}");
    row("requests/sec", cold_rps, warm_rps);
    row("p50 latency (ms)", cold_p50, warm_p50);
    row("p99 latency (ms)", cold_p99, warm_p99);
    println!(
        "dedup: {joined}/{run} requests joined an in-flight duplicate ({:.0}%), {executed} jobs executed",
        dedup_ratio * 100.0
    );

    let json = Json::obj(vec![
        (
            "meta",
            Json::obj(vec![
                ("bench", Json::str("loadgen")),
                ("scale", Json::str(format!("{:?}", args.scale))),
                ("clients", Json::U64(args.clients as u64)),
                ("requests_per_client", Json::U64(args.requests as u64)),
                ("workers", Json::U64(args.workers as u64)),
                ("mix", Json::str("table3 + ablation, alternating")),
            ]),
        ),
        ("cold", cold_json),
        ("warm", warm_json),
        (
            "dedup",
            Json::obj(vec![
                ("requests", Json::U64(run)),
                ("joined", Json::U64(joined)),
                ("jobs_executed", Json::U64(executed)),
                ("ratio", Json::F64(dedup_ratio)),
            ]),
        ),
        (
            "cache",
            Json::obj(vec![
                (
                    "hits_after_cold",
                    Json::U64(metric(&cold_metrics, &["cache_hits"])),
                ),
                (
                    "hits_after_warm",
                    Json::U64(metric(&warm_metrics, &["cache_hits"])),
                ),
                (
                    "misses_after_warm",
                    Json::U64(metric(&warm_metrics, &["cache_misses"])),
                ),
                (
                    "race_lost",
                    Json::U64(metric(&warm_metrics, &["cache_race_lost"])),
                ),
            ]),
        ),
    ]);
    write_json_file(&args.out, &json).expect("write artifact");
    eprintln!("loadgen: wrote {}", args.out.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_flags_are_rejected_by_name() {
        let err = parse_args(["--warp".to_string()].into_iter()).unwrap_err();
        assert!(err.contains("--warp"), "{err}");
    }

    #[test]
    fn percentiles_pick_sane_ranks() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&xs, 0.50), 6.0);
        assert_eq!(percentile(&xs, 0.99), 10.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
    }
}
