//! `gsx` — the guardspec command line: run, profile, optimize, and simulate
//! programs written in the textual assembly format.
//!
//! ```text
//! gsx run  prog.s            execute functionally, print register/memory results
//! gsx prof prog.s            print the per-branch profile
//! gsx opt  prog.s            apply the Figure-6 transforms, print the result
//! gsx sim  prog.s            simulate under all three schemes (cached; accepts
//!                            --jobs N and --json <path>)
//! gsx pipeview prog.s [N]    per-cycle pipeline activity for the first N cycles
//! ```

use guardspec_core::{cleanup_program, transform_program, DriverOptions};
use guardspec_harness::{run_experiment, ExperimentSpec, HarnessArgs, RunOptions};
use guardspec_interp::profile::profile_program;
use guardspec_interp::run;
use guardspec_ir::parse::parse_program;
use guardspec_ir::validate::validate;
use guardspec_predict::Scheme;
use guardspec_sim::MachineConfig;
use guardspec_workloads::{Scale, Workload};

fn usage() -> ! {
    eprintln!(
        "usage: gsx <run|prof|opt|sim|pipeview> <file.s> [cycles] [--jobs N] [--json <path>]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, path) = match (args.get(1), args.get(2)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => usage(),
    };
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("gsx: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let prog = parse_program(&src, None).unwrap_or_else(|e| {
        eprintln!("gsx: parse error in {path}: {e}");
        std::process::exit(1);
    });
    let errs = validate(&prog);
    if !errs.is_empty() {
        eprintln!("gsx: {path} failed validation:");
        for e in errs {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }

    // run/prof/opt take no further arguments; a stray one is named and
    // rejected rather than silently ignored (same contract as the bench
    // binaries' strict parser).
    if matches!(cmd, "run" | "prof" | "opt") {
        if let Some(extra) = args.get(3) {
            eprintln!("gsx: {}", guardspec_harness::args::unknown_argument(extra));
            std::process::exit(2);
        }
    }

    match cmd {
        "run" => {
            let res = run(&prog).unwrap_or_else(|e| {
                eprintln!("gsx: execution trapped: {e}");
                std::process::exit(1);
            });
            println!(
                "retired {} instructions ({} branches, {} taken, {} annulled)",
                res.summary.retired,
                res.summary.cond_branches,
                res.summary.taken_branches,
                res.summary.annulled
            );
            let nonzero: Vec<(usize, i64)> = res
                .machine
                .mem
                .iter()
                .copied()
                .enumerate()
                .filter(|&(a, v)| v != 0 && a < 64)
                .collect();
            println!("non-zero low memory: {nonzero:?}");
        }
        "prof" => {
            let (profile, _) = profile_program(&prog).expect("profile");
            println!(
                "{} dynamic instructions, {:.1}% branches",
                profile.retired,
                100.0 * profile.branch_fraction()
            );
            for (site, bp) in profile.branches() {
                let f = prog.func(site.func);
                let pat: String = bp
                    .outcomes
                    .iter()
                    .take(48)
                    .map(|b| if b { 'T' } else { 'F' })
                    .collect();
                println!(
                    "  {}/{} idx {}: {} exec, rate {:.2}  [{}{}]",
                    f.name,
                    f.block(site.block).label,
                    site.idx,
                    bp.executed,
                    bp.taken_rate(),
                    pat,
                    if bp.outcomes.len() > 48 { "…" } else { "" }
                );
            }
        }
        "opt" => {
            let (profile, _) = profile_program(&prog).expect("profile");
            let mut out = prog.clone();
            let report = transform_program(&mut out, &profile, &DriverOptions::proposed());
            cleanup_program(&mut out);
            eprintln!(
                "# {} likelies, {} if-conversions, {} splits, {} ops speculated",
                report.likelies, report.ifconversions, report.splits, report.speculated_ops
            );
            print!("{out}");
        }
        "sim" => {
            // The three-scheme matrix as a one-workload experiment: profile,
            // transform and per-scheme stats all go through the shared
            // results cache, so repeat sims of the same file are instant.
            let flags = HarnessArgs::try_parse(args.iter().skip(3).cloned()).unwrap_or_else(|e| {
                eprintln!("gsx: {e}");
                std::process::exit(2);
            });
            let workload = Workload {
                name: Box::leak(path.to_string().into_boxed_str()),
                description: "gsx input file",
                program: prog.clone(),
                // No golden results for ad-hoc files: skip verification.
                expected: Vec::new(),
            };
            let mut spec = ExperimentSpec {
                name: "gsx-sim".to_string(),
                scale: Scale::Small,
                workloads: vec![workload],
                cells: Vec::new(),
            };
            let cfg = MachineConfig::r10000();
            for scheme in Scheme::ALL {
                spec.push_cell(
                    0,
                    scheme.label(),
                    (scheme == Scheme::Proposed).then(DriverOptions::proposed),
                    scheme,
                    cfg.clone(),
                );
            }
            let result = run_experiment(
                &spec,
                &RunOptions {
                    jobs: flags.jobs,
                    cache_dir: Some(guardspec_harness::DEFAULT_CACHE_DIR.into()),
                    ..RunOptions::default()
                },
            );
            println!(
                "{:<12} {:>10} {:>8} {:>10} {:>10}",
                "scheme", "cycles", "IPC", "mispredict", "indirect"
            );
            for (name, cell) in ["2-bit BP", "proposed", "perfect BP"]
                .iter()
                .zip(&result.cells)
            {
                let s = &cell.stats;
                println!(
                    "{:<12} {:>10} {:>8.3} {:>10} {:>10}",
                    name,
                    s.cycles,
                    s.ipc(),
                    s.mispredicts,
                    s.indirect_stalls
                );
            }
            if let Some(path) = &flags.json {
                match guardspec_harness::write_json_file(
                    path,
                    &guardspec_harness::full_json(&result),
                ) {
                    Ok(()) => eprintln!("[artifact] {}", path.display()),
                    Err(e) => eprintln!("[artifact] {} write failed: {e}", path.display()),
                }
            }
        }
        "pipeview" => {
            let n: usize = match args.get(3) {
                Some(s) => s.parse().unwrap_or_else(|_| {
                    eprintln!("gsx: bad cycle count {s:?} (want a non-negative integer)");
                    std::process::exit(2);
                }),
                None => 40,
            };
            if let Some(extra) = args.get(4) {
                eprintln!("gsx: {}", guardspec_harness::args::unknown_argument(extra));
                std::process::exit(2);
            }
            let (layout, trace, _) = guardspec_interp::trace::trace_program(&prog).expect("trace");
            let cfg = MachineConfig::r10000();
            let (stats, log) = guardspec_sim::simulate_trace_logged(
                &prog,
                &layout,
                &trace,
                Scheme::TwoBit,
                &cfg,
                n,
            )
            .expect("sim");
            let log = log.expect("log");
            println!(
                "{:>6} {:>5} {:>5} {:>6} | {:>3} {:>4} {:>4} | fetch state",
                "cycle", "fetch", "issue", "commit", "BRq", "LDq", "INTq"
            );
            for r in &log.records {
                let issued: u32 = r.issued.iter().map(|&x| x as u32).sum();
                println!(
                    "{:>6} {:>5} {:>5} {:>6} | {:>3} {:>4} {:>4} | {}",
                    r.cycle,
                    r.fetched,
                    issued,
                    r.committed,
                    r.queue_len[0],
                    r.queue_len[1],
                    r.queue_len[2],
                    if r.fetch_stalled { "STALL" } else { "" }
                );
            }
            println!(
                "... {} total cycles, IPC {:.3}, {} mispredicts",
                stats.cycles,
                stats.ipc(),
                stats.mispredicts
            );
        }
        _ => usage(),
    }
}
