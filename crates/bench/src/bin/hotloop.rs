//! `hotloop` — before/after wall-clock benchmark for the hot-loop
//! optimisation work (allocation-free pipeline, dense profiles, simulator
//! state reuse, streaming traces).
//!
//! Runs the Table-3 three-scheme matrix with the cache **disabled** (so
//! every stage really executes) under both trace pipelines — streamed and
//! materialized (`--no-stream` equivalent) — repeats each a few times, and
//! writes `results/BENCH_2.json` comparing the measured wall clock and
//! per-stage sums against the recorded pre-optimisation baseline.  The
//! file is overwritten on purpose: it is the PR's before/after evidence,
//! not a per-run log (those are the numbered artifacts the table binaries
//! emit).
//!
//! The baseline was measured on the pre-optimisation tree (commit
//! `a954906`, "PR 1") with `table3 --scale small --jobs 1` and a cold
//! cache, three runs — so `hotloop --scale small --jobs 1` is the
//! apples-to-apples configuration.  Other scales/job counts still run and
//! report, but the speedup fields only claim comparability at that shape.

use guardspec_bench::harness_args;
use guardspec_harness::{run_experiment, write_json_file, ExperimentSpec, Json, RunOptions};
use guardspec_workloads::Scale;
use std::path::Path;

/// Cold `table3 --scale small --jobs 1` on the pre-optimisation tree
/// (commit a954906), three runs.
const BASELINE_WALL_MS: [f64; 3] = [500.8, 483.9, 509.3];
/// Sum of the simulate-stage timings across the nine cells, same runs.
const BASELINE_SIM_MS_SUM: f64 = 454.9;
/// Sum of the profile-stage timings across the three workloads, same runs.
const BASELINE_PROFILE_MS_SUM: f64 = 37.2;

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

struct Measured {
    wall: Vec<f64>,
    sim_sum: Vec<f64>,
    profile_sum: Vec<f64>,
    jobs: usize,
}

fn measure(spec: &ExperimentSpec, opts: &RunOptions, reps: usize, tag: &str) -> Measured {
    let mut m = Measured {
        wall: Vec::with_capacity(reps),
        sim_sum: Vec::with_capacity(reps),
        profile_sum: Vec::with_capacity(reps),
        jobs: 0,
    };
    for rep in 0..reps {
        let r = run_experiment(spec, opts);
        assert_eq!(r.cache_hits + r.cache_misses, 0, "cache must be disabled");
        m.wall.push(r.wall_ms);
        m.sim_sum
            .push(r.cells.iter().map(|c| c.sim_timing.ms).sum::<f64>());
        m.profile_sum
            .push(r.workloads.iter().map(|w| w.timing.ms).sum::<f64>());
        m.jobs = r.jobs;
        eprintln!(
            "[hotloop] {tag} rep {}/{}: wall {:.1} ms (sim {:.1} ms, profile {:.1} ms)",
            rep + 1,
            reps,
            m.wall[rep],
            m.sim_sum[rep],
            m.profile_sum[rep]
        );
    }
    m
}

fn measured_json(m: &Measured) -> Json {
    let arr = |xs: &[f64]| Json::Arr(xs.iter().map(|&x| Json::F64(x)).collect());
    Json::obj(vec![
        ("wall_ms", arr(&m.wall)),
        ("wall_ms_mean", Json::F64(mean(&m.wall))),
        ("sim_ms_sum", Json::F64(mean(&m.sim_sum))),
        ("profile_ms_sum", Json::F64(mean(&m.profile_sum))),
    ])
}

fn speedup_json(m: &Measured) -> Json {
    Json::obj(vec![
        ("wall", Json::F64(mean(&BASELINE_WALL_MS) / mean(&m.wall))),
        ("sim", Json::F64(BASELINE_SIM_MS_SUM / mean(&m.sim_sum))),
        (
            "profile",
            Json::F64(BASELINE_PROFILE_MS_SUM / mean(&m.profile_sum)),
        ),
    ])
}

fn main() {
    let args = harness_args();
    let reps = if args.scale == Scale::Test { 1 } else { 3 };
    let spec = ExperimentSpec::three_schemes("hotloop", args.scale);
    // Cold on purpose (no cache): measure the compute, not the cache.
    // Both pipelines are measured regardless of --no-stream so the artifact
    // always carries the full before/after picture.
    // Fan-out is disabled so the stream/no-stream comparison keeps its
    // historical meaning (one interpretation per cell, either pipeline).
    let opts = |stream| RunOptions {
        jobs: args.jobs,
        cache_dir: None,
        stream,
        fanout: false,
        ..RunOptions::default()
    };
    let materialized = measure(&spec, &opts(false), reps, "no-stream");
    let streamed = measure(&spec, &opts(true), reps, "streamed");
    let jobs_effective = streamed.jobs;

    let comparable = args.scale == Scale::Small && jobs_effective == 1;
    let baseline_wall = mean(&BASELINE_WALL_MS);
    let row = |label: &str, before: f64, after: f64| {
        println!(
            "{label:<28} {before:>10.1} {after:>10.1} {:>8.2}x",
            before / after
        );
    };
    println!(
        "{:<28} {:>10} {:>10} {:>8}   (scale {:?}, jobs {})",
        "stage", "before/ms", "after/ms", "speedup", args.scale, jobs_effective,
    );
    for (tag, m) in [("no-stream", &materialized), ("streamed", &streamed)] {
        row(&format!("wall, {tag}"), baseline_wall, mean(&m.wall));
        row(
            &format!("simulate stages, {tag}"),
            BASELINE_SIM_MS_SUM,
            mean(&m.sim_sum),
        );
        row(
            &format!("profile stages, {tag}"),
            BASELINE_PROFILE_MS_SUM,
            mean(&m.profile_sum),
        );
    }
    if !comparable {
        println!("note: baseline is `--scale small --jobs 1`; this run is not that shape");
    }

    let arr = |xs: &[f64]| Json::Arr(xs.iter().map(|&x| Json::F64(x)).collect());
    let json = Json::obj(vec![
        (
            "meta",
            Json::obj(vec![
                ("bench", Json::str("hotloop")),
                ("spec", Json::str("three_schemes")),
                ("scale", Json::str(format!("{:?}", args.scale))),
                ("jobs", Json::U64(jobs_effective as u64)),
                ("reps", Json::U64(reps as u64)),
                ("comparable_to_baseline", Json::Bool(comparable)),
            ]),
        ),
        (
            "baseline",
            Json::obj(vec![
                ("commit", Json::str("a954906")),
                (
                    "config",
                    Json::str("table3 --scale small --jobs 1, cold cache"),
                ),
                ("wall_ms", arr(&BASELINE_WALL_MS)),
                ("wall_ms_mean", Json::F64(baseline_wall)),
                ("sim_ms_sum", Json::F64(BASELINE_SIM_MS_SUM)),
                ("profile_ms_sum", Json::F64(BASELINE_PROFILE_MS_SUM)),
            ]),
        ),
        (
            "current",
            Json::obj(vec![
                ("no_stream", measured_json(&materialized)),
                ("streamed", measured_json(&streamed)),
            ]),
        ),
        (
            "speedup",
            Json::obj(vec![
                ("no_stream", speedup_json(&materialized)),
                ("streamed", speedup_json(&streamed)),
            ]),
        ),
    ]);
    let path = Path::new(guardspec_harness::DEFAULT_RESULTS_DIR).join("BENCH_2.json");
    match write_json_file(&path, &json) {
        Ok(()) => eprintln!("[artifact] {}", path.display()),
        Err(e) => {
            eprintln!("[artifact] {} write failed: {e}", path.display());
            std::process::exit(1);
        }
    }
}
