//! Cycle-accounting attribution report.
//!
//! Runs the Tables-3/4 matrix with the simulator's cycle-accounting
//! observer on and prints, per workload:
//!
//! * the **cycle-bucket table** — every cycle of each scheme attributed to
//!   exactly one cause (the buckets are asserted to sum to `stats.cycles`),
//! * the **attribution table** — each branch the Figure-6 driver actively
//!   transformed, pairing its *predicted* benefit/cost (decision log)
//!   with the *measured* baseline cost of that site (2-bit-BP mispredicts
//!   and recovery cycles at the same original-program location),
//! * the measured whole-workload mispredict delta (2-bit − proposed).
//!
//! Extra flags on top of the common set:
//!
//! * `--check-trace <file>` — do not run anything; validate that `<file>`
//!   is a loadable Chrome trace-event document (parses, has the required
//!   fields, spans nest per thread).  Exit 0/1.  Used by `scripts/verify.sh`.

use guardspec_bench::{finish_artifacts, hr, run_options};
use guardspec_harness::args::take_value;
use guardspec_harness::{run_experiment, CellResult, ExperimentSpec, HarnessArgs};
use guardspec_interp::StaticLayout;
use guardspec_predict::Scheme;
use guardspec_sim::CycleBucket;

fn main() {
    // `--check-trace` rides through the strict common parser as a
    // binary-specific extension; anything else unknown still exits 2.
    let mut check: Option<String> = None;
    let args = HarnessArgs::parse_with(|arg, rest| {
        if arg == "--check-trace" {
            check = Some(take_value(rest, "--check-trace")?);
            Ok(true)
        } else {
            Ok(false)
        }
    });
    if let Some(path) = check {
        std::process::exit(check_trace(&path));
    }

    let scale = args.scale;
    let spec = ExperimentSpec::three_schemes("report", scale);
    let mut opts = run_options(&args);
    opts.observe = true; // the whole point of this binary
    let result = run_experiment(&spec, &opts);

    println!("Cycle-accounting attribution report (scale {scale:?})");
    for (wi, w) in result.workloads.iter().enumerate() {
        let cells: Vec<&CellResult> = result.cells_for(&w.name).collect();
        println!();
        println!("== {} ==", w.name);

        // Cycle buckets, one column per scheme, as % of that cell's cycles.
        hr(76);
        print!("{:<22}", "cycle bucket");
        for c in &cells {
            print!(" {:>16}", c.label);
        }
        println!();
        hr(76);
        for bucket in CycleBucket::ALL {
            print!("{:<22}", bucket.name());
            for c in &cells {
                let acct = c.accounting.as_ref().expect("observed run");
                // The invariant the whole report rests on.
                acct.check(&c.stats);
                let pct = 100.0 * acct.bucket(bucket) as f64 / c.stats.cycles as f64;
                print!(" {:>15.2}%", pct);
            }
            println!();
        }
        hr(76);

        // Per-site attribution: decisions that changed code, against the
        // baseline (2-bit, original program) measurement of the same site.
        let base = cell_for(&cells, Scheme::TwoBit);
        let prop = cell_for(&cells, Scheme::Proposed);
        let base_acct = base.accounting.as_ref().expect("observed run");
        let layout = StaticLayout::build(&spec.workloads[wi].program);
        let report = prop.report.as_ref().expect("proposed cell has a report");
        check_decision_schema(&w.name, report);
        println!("transformed branches: predicted (driver) vs measured (2-bit baseline)");
        println!(
            "{:<36} {:>9} {:>9} | {:>9} {:>10} {:>9}",
            "site / action", "benefit", "cost", "execs", "mispredicts", "recovery"
        );
        let mut any = false;
        for d in &report.decisions {
            if d.action == "untouched" {
                continue;
            }
            any = true;
            let site = guardspec_ir::InsnRef {
                func: guardspec_ir::FuncId(d.func),
                block: guardspec_ir::BlockId(d.block),
                idx: d.idx,
            };
            let m = base_acct.site(layout.id(site));
            println!(
                "{:<36} {:>9} {:>9} | {:>9} {:>10} {:>9}",
                format!("f{} b{} i{} {}", d.func, d.block, d.idx, d.action),
                d.benefit,
                d.cost,
                m.executions,
                m.mispredicts,
                m.recovery_cycles
            );
        }
        if !any {
            println!("(driver left every branch untouched)");
        }
        let delta = base.stats.mispredicts as i64 - prop.stats.mispredicts as i64;
        println!(
            "workload mispredicts: {} (2-bit) -> {} (proposed), delta {}; \
             recovery cycles {} -> {}",
            base.stats.mispredicts,
            prop.stats.mispredicts,
            delta,
            base_acct.bucket(CycleBucket::MispredictRecovery),
            prop.accounting
                .as_ref()
                .expect("observed run")
                .bucket(CycleBucket::MispredictRecovery),
        );
    }
    finish_artifacts(&result, &args);
}

fn cell_for<'a>(cells: &[&'a CellResult], scheme: Scheme) -> &'a CellResult {
    cells
        .iter()
        .find(|c| c.scheme == scheme)
        .expect("three_schemes spec has every scheme")
}

/// The decision-log schema check: every visited branch carries a tagged
/// behavior, a tagged action, and a nonempty reason; active transforms
/// carry the cost comparison that justified them.
fn check_decision_schema(wname: &str, report: &guardspec_harness::ReportSummary) {
    assert!(
        !report.decisions.is_empty(),
        "{wname}: proposed transform visited no loop branches"
    );
    for d in &report.decisions {
        assert!(!d.reason.is_empty(), "{wname}: decision without reason");
        assert!(!d.action.is_empty(), "{wname}: decision without action");
        assert!(!d.behavior.is_empty(), "{wname}: decision without behavior");
        let active = d.action != "untouched";
        if active && (d.action.starts_with("if-convert") || d.action.starts_with("split-branch")) {
            assert!(
                d.benefit != "-" && d.cost != "-",
                "{wname}: gated action {} lacks its cost comparison",
                d.action
            );
        }
    }
}

fn check_trace(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    let parsed = match guardspec_harness::json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e}");
            return 1;
        }
    };
    match guardspec_harness::validate_chrome_trace(&parsed) {
        Ok(()) => {
            println!("{path}: valid Chrome trace-event document");
            0
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            1
        }
    }
}
