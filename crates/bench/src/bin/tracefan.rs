//! `tracefan` — before/after evidence for the trace-once/simulate-many
//! fan-out and the persistent binary trace cache.
//!
//! The workload is a machine-config sweep (the shape DESIGN.md §5 sweeps
//! and the CI ablations actually run): per workload, eight `MachineConfig`
//! variants simulate the untransformed program and four more simulate the
//! proposed-transform program — twelve sim cells over two distinct
//! programs.  That is exactly the shape the fan-out targets: the per-cell
//! pipeline re-interprets the program for every config point, the fan-out
//! pipeline interprets each distinct program once and broadcasts the
//! trace.
//!
//! Three paths are measured:
//!
//! * **before** — fan-out disabled, cache disabled: the historical
//!   pipeline, one interpretation per cell, every stage recomputed;
//! * **cold fan-out** — fan-out on, a fresh scratch trace cache per rep:
//!   exactly one interpretation per *distinct program*, blobs recorded;
//! * **warm fan-out** — rerun against the cold rep's cache: zero
//!   interpretations, every trace replayed from its blob.
//!
//! Asserts the structural claims (interpretation counts, warm
//! `trace.cached`, byte-identical stable artifacts across all three
//! paths) and writes `results/BENCH_10.json` comparing wall clocks.  The
//! file is overwritten on purpose: it is the PR's before/after evidence,
//! not a per-run log.

use guardspec_bench::harness_args;
use guardspec_core::DriverOptions;
use guardspec_harness::{
    key, run_experiment, stable_json, write_json_file, ExperimentResult, ExperimentSpec, Json,
    RunOptions,
};
use guardspec_predict::Scheme;
use guardspec_sim::MachineConfig;
use guardspec_workloads::Scale;
use std::collections::HashSet;
use std::path::{Path, PathBuf};

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("guardspec-tracefan-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Eight distinct config points over the untransformed program: the
/// R10000 baseline plus front-end depth, BHT size, and window sweeps.
/// (Depth 2 / BHT 512 are the baseline values, so the variants below are
/// pairwise distinct — no two cells share a sim cache key.)
fn base_configs() -> Vec<(String, MachineConfig)> {
    let mut v = vec![("base".to_string(), MachineConfig::r10000())];
    for depth in [0u64, 1, 4] {
        let mut cfg = MachineConfig::r10000();
        cfg.frontend_depth = depth;
        v.push((format!("depth={depth}"), cfg));
    }
    for bht in [128usize, 2048] {
        let mut cfg = MachineConfig::r10000();
        cfg.bht_entries = bht;
        v.push((format!("bht={bht}"), cfg));
    }
    for rob in [16usize, 64] {
        let mut cfg = MachineConfig::r10000();
        cfg.rob_size = rob;
        v.push((format!("rob={rob}"), cfg));
    }
    v
}

/// Four config points over the proposed-transform program.  All four
/// cells share one transform and (under fan-out) one trace.
fn proposed_configs() -> Vec<(String, MachineConfig)> {
    base_configs()
        .into_iter()
        .filter(|(l, _)| matches!(l.as_str(), "base" | "depth=0" | "depth=4" | "bht=128"))
        .collect()
}

/// The config-sweep experiment: 12 sim cells per workload over 2 distinct
/// programs (8 untransformed + 4 proposed-transform points).
fn sweep_spec(scale: Scale) -> ExperimentSpec {
    let mut spec = ExperimentSpec::profiles_only("tracefan", scale);
    for w in 0..spec.workloads.len() {
        for (label, cfg) in base_configs() {
            spec.push_cell(w, format!("twobit/{label}"), None, Scheme::TwoBit, cfg);
        }
        for (label, cfg) in proposed_configs() {
            spec.push_cell(
                w,
                format!("proposed/{label}"),
                Some(DriverOptions::proposed()),
                Scheme::Proposed,
                cfg,
            );
        }
    }
    spec
}

/// One distinct program per workload any untransformed cell uses, plus one
/// per distinct (workload, transform options) pair — the number of
/// interpretations a cold fan-out run is allowed.
fn distinct_programs(spec: &ExperimentSpec) -> u64 {
    let bases = spec
        .workloads
        .iter()
        .enumerate()
        .filter(|(wi, _)| {
            spec.cells
                .iter()
                .any(|c| c.workload == *wi && c.transform.is_none())
        })
        .count();
    let transforms: HashSet<(usize, String)> = spec
        .cells
        .iter()
        .filter_map(|c| {
            c.transform
                .as_ref()
                .map(|o| (c.workload, key::describe_options(o)))
        })
        .collect();
    (bases + transforms.len()) as u64
}

struct Measured {
    wall: Vec<f64>,
    interpretations: Vec<u64>,
    stable: String,
}

fn summarize(tag: &str, runs: Vec<ExperimentResult>) -> Measured {
    let stable = stable_json(&runs[0]).to_pretty();
    for r in &runs {
        assert_eq!(
            stable_json(r).to_pretty(),
            stable,
            "{tag}: stable artifact varies across reps"
        );
    }
    let m = Measured {
        wall: runs.iter().map(|r| r.wall_ms).collect(),
        interpretations: runs.iter().map(|r| r.interpretations).collect(),
        stable,
    };
    for (i, r) in runs.iter().enumerate() {
        eprintln!(
            "[tracefan] {tag} rep {}/{}: wall {:.1} ms, {} interpretations",
            i + 1,
            runs.len(),
            r.wall_ms,
            r.interpretations
        );
    }
    m
}

fn measured_json(m: &Measured) -> Json {
    Json::obj(vec![
        (
            "wall_ms",
            Json::Arr(m.wall.iter().map(|&x| Json::F64(x)).collect()),
        ),
        ("wall_ms_mean", Json::F64(mean(&m.wall))),
        (
            "interpretations",
            Json::Arr(m.interpretations.iter().map(|&x| Json::U64(x)).collect()),
        ),
    ])
}

fn main() {
    let args = harness_args();
    let reps = if args.scale == Scale::Test { 1 } else { 3 };
    let spec = sweep_spec(args.scale);
    let programs = distinct_programs(&spec);
    let cells = spec.cells.len() as u64;

    // Before: the historical per-cell pipeline, cache fully disabled so
    // the comparison measures compute, not cache temperature.
    let before = summarize(
        "before (no-fanout)",
        (0..reps)
            .map(|_| {
                let r = run_experiment(
                    &spec,
                    &RunOptions {
                        jobs: args.jobs,
                        cache_dir: None,
                        fanout: false,
                        ..RunOptions::default()
                    },
                );
                assert_eq!(r.cache_hits + r.cache_misses, 0, "cache must be disabled");
                // One profile interpretation per workload plus one trace
                // interpretation per cell — the O(cells) cost being removed.
                assert_eq!(
                    r.interpretations,
                    spec.workloads.len() as u64 + cells,
                    "per-cell path interprets once per workload and once per cell"
                );
                r
            })
            .collect(),
    );

    // Cold fan-out: fresh trace cache each rep; warm fan-out: rerun
    // against the last cold rep's cache.
    let mut dirs: Vec<PathBuf> = Vec::new();
    let opts_in = |dir: &Path| RunOptions {
        jobs: args.jobs,
        cache_dir: Some(dir.to_path_buf()),
        ..RunOptions::default()
    };
    let cold = summarize(
        "cold fan-out",
        (0..reps)
            .map(|rep| {
                let dir = scratch(&format!("cold{rep}"));
                let r = run_experiment(&spec, &opts_in(&dir));
                assert_eq!(
                    r.interpretations, programs,
                    "cold fan-out interprets once per distinct program"
                );
                dirs.push(dir);
                r
            })
            .collect(),
    );
    let warm = summarize(
        "warm fan-out",
        (0..reps)
            .map(|rep| {
                let r = run_experiment(&spec, &opts_in(&dirs[rep]));
                assert_eq!(r.interpretations, 0, "warm fan-out must not interpret");
                assert!(
                    r.cells
                        .iter()
                        .all(|c| c.trace_timing.is_some_and(|t| t.cached)),
                    "warm cells must report trace.cached = true"
                );
                r
            })
            .collect(),
    );
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }

    assert_eq!(before.stable, cold.stable, "fan-out changed the science");
    assert_eq!(cold.stable, warm.stable, "blob replay changed the science");
    eprintln!("[tracefan] stable artifacts byte-identical across all three paths");

    let cold_speedup = mean(&before.wall) / mean(&cold.wall);
    let warm_speedup = mean(&before.wall) / mean(&warm.wall);
    println!(
        "{:<22} {:>10} {:>8}   (scale {:?}, jobs {}, {} cells, {} distinct programs)",
        "path", "wall/ms", "speedup", args.scale, args.jobs, cells, programs
    );
    for (tag, m, s) in [
        ("before (no-fanout)", &before, 1.0),
        ("cold fan-out", &cold, cold_speedup),
        ("warm fan-out", &warm, warm_speedup),
    ] {
        println!("{tag:<22} {:>10.1} {s:>7.2}x", mean(&m.wall));
    }

    let json = Json::obj(vec![
        (
            "meta",
            Json::obj(vec![
                ("bench", Json::str("tracefan")),
                (
                    "spec",
                    Json::str("config sweep: 8 baseline + 4 proposed points per workload"),
                ),
                ("scale", Json::str(format!("{:?}", args.scale))),
                ("jobs", Json::U64(args.jobs as u64)),
                ("reps", Json::U64(reps as u64)),
                ("cells", Json::U64(cells)),
                ("distinct_programs", Json::U64(programs)),
                ("stable_artifacts_identical_across_paths", Json::Bool(true)),
            ]),
        ),
        (
            "paths",
            Json::obj(vec![
                ("before_no_fanout", measured_json(&before)),
                ("cold_fanout", measured_json(&cold)),
                ("warm_fanout", measured_json(&warm)),
            ]),
        ),
        (
            "speedup_vs_before",
            Json::obj(vec![
                ("cold_fanout", Json::F64(cold_speedup)),
                ("warm_fanout", Json::F64(warm_speedup)),
            ]),
        ),
    ]);
    let path = Path::new(guardspec_harness::DEFAULT_RESULTS_DIR).join("BENCH_10.json");
    match write_json_file(&path, &json) {
        Ok(()) => eprintln!("[artifact] {}", path.display()),
        Err(e) => {
            eprintln!("[artifact] {} write failed: {e}", path.display());
            std::process::exit(1);
        }
    }
}
