//! Design-choice sweeps (DESIGN.md §5): BHT geometry, predictor family,
//! split thresholds, misprediction depth.  Each sweep varies ONE knob and
//! reports its effect across the workloads.
//!
//! Sweeps 1–2 replay the (cached) profiles through predictor models;
//! sweeps 3–4 are simulation cells of one shared experiment, so every
//! (threshold, depth) point is cached independently.

use guardspec_bench::{finish_artifacts, harness_args, run_options, workloads};
use guardspec_core::{DriverOptions, FeedbackParams};
use guardspec_harness::{run_experiment, CellResult, ExperimentSpec};
use guardspec_interp::StaticLayout;
use guardspec_predict::{
    measure_gshare_accuracy, measure_onebit_accuracy, measure_twobit_accuracy, Scheme,
};
use guardspec_sim::MachineConfig;

fn outcome_stream(profile: &guardspec_interp::Profile, layout: &StaticLayout) -> Vec<(u64, bool)> {
    let mut v = Vec::new();
    for (site, bp) in profile.branches() {
        let pc = layout.pc_of(site);
        for b in bp.outcomes.iter() {
            v.push((pc, b));
        }
    }
    v
}

const THRESHOLDS: [f64; 3] = [0.90, 0.95, 0.99];
const DEPTHS: [u64; 3] = [0, 2, 4];

fn sweep_spec(scale: guardspec_workloads::Scale) -> ExperimentSpec {
    let mut spec = ExperimentSpec::profiles_only("sweeps", scale);
    for w in 0..spec.workloads.len() {
        for thr in THRESHOLDS {
            let mut opts = DriverOptions::proposed();
            opts.feedback = FeedbackParams {
                likely_threshold: thr,
                ..opts.feedback
            };
            spec.push_cell(
                w,
                format!("likely={thr:.2}"),
                Some(opts),
                Scheme::Proposed,
                MachineConfig::r10000(),
            );
        }
    }
    for w in 0..spec.workloads.len() {
        for depth in DEPTHS {
            let mut cfg = MachineConfig::r10000();
            cfg.frontend_depth = depth;
            spec.push_cell(w, format!("depth={depth}"), None, Scheme::TwoBit, cfg);
        }
    }
    spec
}

fn main() {
    let args = harness_args();
    let scale = args.scale;
    let ws = workloads(scale);
    let spec = sweep_spec(scale);
    let result = run_experiment(&spec, &run_options(&args));

    println!("Sweep 1: BHT size (2-bit accuracy %)");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "workload", "64", "128", "512", "2048", "8192"
    );
    for (w, wr) in ws.iter().zip(&result.workloads) {
        let layout = StaticLayout::build(&w.program);
        let stream = outcome_stream(&wr.profile, &layout);
        print!("{:<10}", w.name);
        for entries in [64usize, 128, 512, 2048, 8192] {
            print!(
                " {:>6.2}",
                100.0 * measure_twobit_accuracy(entries, stream.iter().copied())
            );
        }
        println!();
    }

    println!("\nSweep 2: predictor family at 512 entries (accuracy %)");
    println!(
        "{:<10} {:>8} {:>8} {:>10}",
        "workload", "1-bit", "2-bit", "gshare/8"
    );
    for (w, wr) in ws.iter().zip(&result.workloads) {
        let layout = StaticLayout::build(&w.program);
        let stream = outcome_stream(&wr.profile, &layout);
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>10.2}",
            w.name,
            100.0 * measure_onebit_accuracy(512, stream.iter().copied()),
            100.0 * measure_twobit_accuracy(512, stream.iter().copied()),
            100.0 * measure_gshare_accuracy(512, 8, stream.iter().copied()),
        );
    }

    println!("\nSweep 3: Figure-6 likely threshold (proposed-scheme cycles)");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "workload", "0.90", "0.95", "0.99"
    );
    for w in &result.workloads {
        let cells: Vec<&CellResult> = result.cells_for(&w.name).collect();
        print!("{:<10}", w.name);
        for thr in THRESHOLDS {
            let label = format!("likely={thr:.2}");
            let cell = cells
                .iter()
                .find(|c| c.label == label)
                .expect("sweep3 cell");
            print!(" {:>10}", cell.stats.cycles);
        }
        println!();
    }

    println!("\nSweep 4: front-end depth (baseline cycles; deeper pipes hurt mispredict-heavy codes most)");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "workload", "depth 0", "depth 2", "depth 4"
    );
    for w in &result.workloads {
        let cells: Vec<&CellResult> = result.cells_for(&w.name).collect();
        print!("{:<10}", w.name);
        for depth in DEPTHS {
            let label = format!("depth={depth}");
            let cell = cells
                .iter()
                .find(|c| c.label == label)
                .expect("sweep4 cell");
            print!(" {:>10}", cell.stats.cycles);
        }
        println!();
    }
    finish_artifacts(&result, &args);
}
