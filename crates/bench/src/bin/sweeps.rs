//! Design-choice sweeps (DESIGN.md §5): BHT geometry, predictor family,
//! split thresholds, misprediction depth.  Each sweep varies ONE knob and
//! reports its effect across the workloads.

use guardspec_bench::{scale_from_args, workloads};
use guardspec_core::{transform_program, DriverOptions, FeedbackParams};
use guardspec_interp::profile::profile_program;
use guardspec_interp::StaticLayout;
use guardspec_predict::{
    measure_gshare_accuracy, measure_onebit_accuracy, measure_twobit_accuracy, Scheme,
};
use guardspec_sim::{simulate_trace, MachineConfig};

fn outcome_stream(
    profile: &guardspec_interp::Profile,
    layout: &StaticLayout,
) -> Vec<(u64, bool)> {
    let mut v = Vec::new();
    for (site, bp) in &profile.branches {
        let pc = layout.pc_of(*site);
        for b in bp.outcomes.iter() {
            v.push((pc, b));
        }
    }
    v
}

fn main() {
    let scale = scale_from_args();
    let ws = workloads(scale);

    println!("Sweep 1: BHT size (2-bit accuracy %)");
    println!("{:<10} {:>6} {:>6} {:>6} {:>6} {:>6}", "workload", "64", "128", "512", "2048", "8192");
    for w in &ws {
        let (profile, _) = profile_program(&w.program).unwrap();
        let layout = StaticLayout::build(&w.program);
        let stream = outcome_stream(&profile, &layout);
        print!("{:<10}", w.name);
        for entries in [64usize, 128, 512, 2048, 8192] {
            print!(" {:>6.2}", 100.0 * measure_twobit_accuracy(entries, stream.iter().copied()));
        }
        println!();
    }

    println!("\nSweep 2: predictor family at 512 entries (accuracy %)");
    println!("{:<10} {:>8} {:>8} {:>10}", "workload", "1-bit", "2-bit", "gshare/8");
    for w in &ws {
        let (profile, _) = profile_program(&w.program).unwrap();
        let layout = StaticLayout::build(&w.program);
        let stream = outcome_stream(&profile, &layout);
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>10.2}",
            w.name,
            100.0 * measure_onebit_accuracy(512, stream.iter().copied()),
            100.0 * measure_twobit_accuracy(512, stream.iter().copied()),
            100.0 * measure_gshare_accuracy(512, 8, stream.iter().copied()),
        );
    }

    println!("\nSweep 3: Figure-6 likely threshold (proposed-scheme cycles)");
    println!("{:<10} {:>10} {:>10} {:>10}", "workload", "0.90", "0.95", "0.99");
    for w in &ws {
        let (profile, _) = profile_program(&w.program).unwrap();
        print!("{:<10}", w.name);
        for thr in [0.90, 0.95, 0.99] {
            let mut opts = DriverOptions::proposed();
            opts.feedback = FeedbackParams { likely_threshold: thr, ..opts.feedback };
            let mut p = w.program.clone();
            transform_program(&mut p, &profile, &opts);
            let (layout, trace, exec) = guardspec_interp::trace::trace_program(&p).unwrap();
            assert!(w.verify(&exec.machine.mem).is_empty());
            let cfg = MachineConfig::r10000();
            let stats = simulate_trace(&p, &layout, &trace, Scheme::Proposed, &cfg).unwrap();
            print!(" {:>10}", stats.cycles);
        }
        println!();
    }

    println!("\nSweep 4: front-end depth (baseline cycles; deeper pipes hurt mispredict-heavy codes most)");
    println!("{:<10} {:>10} {:>10} {:>10}", "workload", "depth 0", "depth 2", "depth 4");
    for w in &ws {
        let (layout, trace, _) = guardspec_interp::trace::trace_program(&w.program).unwrap();
        print!("{:<10}", w.name);
        for depth in [0u64, 2, 4] {
            let mut cfg = MachineConfig::r10000();
            cfg.frontend_depth = depth;
            let stats = simulate_trace(&w.program, &layout, &trace, Scheme::TwoBit, &cfg).unwrap();
            print!(" {:>10}", stats.cycles);
        }
        println!();
    }
}
