//! `blockcomp` — before/after evidence for the compiled block-descriptor
//! engine and SMARTS-style interval sampling.
//!
//! The workload is the three-schemes matrix (the shape `table3`/`table4`
//! run): every workload under 2-bit BP, Proposed and Perfect BP.  Three
//! paths simulate the identical spec with the cache disabled, so the
//! comparison measures simulation compute, not cache temperature:
//!
//! * **interpreted** — `compile: false`: the per-entry interpreted
//!   pipeline loop;
//! * **compiled** — the decoded-uop engine, exact mode.  Stable artifacts
//!   must stay byte-identical to the interpreted path;
//! * **sampled** — the compiled engine under interval sampling: detailed
//!   windows separated by functional warming.  Per-cell `sampling`
//!   estimates must cover the exact IPC within their 95% CI.
//!
//! The figure of merit is the **sim-stage wall clock** (the summed
//! per-cell simulate timings — profile/transform/trace stages are common
//! to all three paths), compared on the fastest rep per path (noise only
//! ever adds time).  Reps are interleaved round-robin across the paths so
//! a sustained load spike on a shared box taxes every path, not just the
//! one that happened to run inside it.  Asserts the PR's structural and
//! performance
//! claims (≥1.5× compiled, ≥5× sampled, CI width > 0, CI covers exact)
//! and writes `results/BENCH_8.json`.  The file is overwritten on
//! purpose: it is the PR's before/after evidence, not a per-run log.

use guardspec_bench::harness_args;
use guardspec_harness::{
    run_experiment, stable_json, write_json_file, ExperimentResult, ExperimentSpec, Json,
    RunOptions,
};
use guardspec_sim::SampleParams;
use guardspec_workloads::Scale;
use std::path::Path;

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Least-noise estimate of a path's sim-stage cost: the fastest rep.
/// Scheduler preemption and frequency dips only ever add time, so the
/// minimum is the most stable cross-rep statistic for a ratio.
fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Summed per-cell simulate-stage wall time — the cost the compiled
/// engine and sampling attack.  Cache is disabled, so no cell is cached.
fn sim_ms(r: &ExperimentResult) -> f64 {
    r.cells
        .iter()
        .map(|c| {
            assert!(!c.sim_timing.cached, "cache must be disabled");
            c.sim_timing.ms
        })
        .sum()
}

/// Sampling parameters sized to the scale: test traces are ~10k entries,
/// so the paper-sized default interval (20k) would fall back to an exact
/// run; a 1k interval keeps ~10 windows per workload at 10% detail.
fn sample_params(scale: Scale) -> SampleParams {
    if scale == Scale::Test {
        SampleParams {
            detail: 50,
            warmup: 50,
            interval: 1000,
        }
    } else {
        SampleParams::default()
    }
}

struct Measured {
    sim: Vec<f64>,
    stable: String,
}

fn summarize(tag: &str, runs: &[ExperimentResult]) -> Measured {
    let stable = stable_json(&runs[0]).to_pretty();
    for r in runs {
        assert_eq!(
            stable_json(r).to_pretty(),
            stable,
            "{tag}: stable artifact varies across reps"
        );
    }
    let sim: Vec<f64> = runs.iter().map(sim_ms).collect();
    for (i, ms) in sim.iter().enumerate() {
        eprintln!(
            "[blockcomp] {tag} rep {}/{}: sim stage {:.1} ms",
            i + 1,
            sim.len(),
            ms
        );
    }
    Measured { sim, stable }
}

fn measured_json(m: &Measured) -> Json {
    Json::obj(vec![
        (
            "sim_ms",
            Json::Arr(m.sim.iter().map(|&x| Json::F64(x)).collect()),
        ),
        ("sim_ms_mean", Json::F64(mean(&m.sim))),
        ("sim_ms_best", Json::F64(best(&m.sim))),
    ])
}

fn main() {
    let args = harness_args();
    let reps = if args.scale == Scale::Test { 1 } else { 5 };
    let spec = ExperimentSpec::three_schemes("blockcomp", args.scale);
    let cells = spec.cells.len() as u64;
    let params = sample_params(args.scale);

    let interp_opts = RunOptions {
        jobs: args.jobs,
        cache_dir: None,
        compile: false,
        ..RunOptions::default()
    };
    let compiled_opts = RunOptions {
        jobs: args.jobs,
        cache_dir: None,
        ..RunOptions::default()
    };
    let sampled_opts = RunOptions {
        jobs: args.jobs,
        cache_dir: None,
        sample: Some(params),
        ..RunOptions::default()
    };
    let mut interp_runs: Vec<ExperimentResult> = Vec::with_capacity(reps);
    let mut compiled_runs: Vec<ExperimentResult> = Vec::with_capacity(reps);
    let mut sampled_runs: Vec<ExperimentResult> = Vec::with_capacity(reps);
    for _ in 0..reps {
        interp_runs.push(run_experiment(&spec, &interp_opts));
        compiled_runs.push(run_experiment(&spec, &compiled_opts));
        sampled_runs.push(run_experiment(&spec, &sampled_opts));
    }
    let interp = summarize("interpreted", &interp_runs);
    let compiled = summarize("compiled", &compiled_runs);
    let sampled = summarize("sampled", &sampled_runs);

    // The engines agree bit for bit; sampling is a different (estimated)
    // payload, checked against the exact run below instead.
    assert_eq!(
        interp.stable, compiled.stable,
        "compiled engine changed the science"
    );
    eprintln!("[blockcomp] interpreted and compiled stable artifacts byte-identical");

    // Every sampled cell carries an estimate whose 95% CI (which already
    // includes the SMARTS bias allowance) covers the exact-run IPC.
    let exact_cells = &compiled_runs[0];
    let mut covered = 0u64;
    for (s, e) in sampled_runs[0].cells.iter().zip(&exact_cells.cells) {
        assert_eq!((&s.workload, &s.label), (&e.workload, &e.label));
        let smp = s.sampling.as_ref().unwrap_or_else(|| {
            panic!(
                "{}/{}: sampled run carries no estimate",
                s.workload, s.label
            )
        });
        assert!(
            smp.windows >= 2,
            "{}/{}: trace too short for sampling ({} windows)",
            s.workload,
            s.label,
            smp.windows
        );
        assert!(
            smp.ipc_ci95 > 0.0,
            "{}/{}: CI width must be positive",
            s.workload,
            s.label
        );
        let exact_ipc = e.stats.ipc();
        if (smp.ipc_mean - exact_ipc).abs() <= smp.ipc_ci95 {
            covered += 1;
        } else {
            eprintln!(
                "[blockcomp] {}/{}: exact IPC {:.4} outside {:.4} ± {:.4}",
                s.workload, s.label, exact_ipc, smp.ipc_mean, smp.ipc_ci95
            );
        }
    }
    assert_eq!(
        covered, cells,
        "every cell's CI must cover its exact IPC on this deterministic spec"
    );
    eprintln!("[blockcomp] all {cells} sampled CIs cover the exact IPC");

    let compiled_speedup = best(&interp.sim) / best(&compiled.sim);
    let sampled_speedup = best(&interp.sim) / best(&sampled.sim);
    println!(
        "{:<14} {:>10} {:>8}   (scale {:?}, jobs {}, {} cells, interval {} @ {}+{} detail)",
        "path",
        "sim/ms",
        "speedup",
        args.scale,
        args.jobs,
        cells,
        params.interval,
        params.warmup,
        params.detail
    );
    for (tag, m, s) in [
        ("interpreted", &interp, 1.0),
        ("compiled", &compiled, compiled_speedup),
        ("sampled", &sampled, sampled_speedup),
    ] {
        println!("{tag:<14} {:>10.1} {s:>7.2}x", best(&m.sim));
    }
    assert!(
        compiled_speedup >= 1.5,
        "compiled engine must be >= 1.5x on the sim stage (got {compiled_speedup:.2}x)"
    );
    assert!(
        sampled_speedup >= 5.0,
        "sampling must be >= 5x on the sim stage (got {sampled_speedup:.2}x)"
    );

    let json = Json::obj(vec![
        (
            "meta",
            Json::obj(vec![
                ("bench", Json::str("blockcomp")),
                (
                    "spec",
                    Json::str("three-schemes matrix, cache disabled, sim-stage wall"),
                ),
                ("scale", Json::str(format!("{:?}", args.scale))),
                ("jobs", Json::U64(args.jobs as u64)),
                ("reps", Json::U64(reps as u64)),
                ("cells", Json::U64(cells)),
                ("sample_detail", Json::U64(params.detail)),
                ("sample_warmup", Json::U64(params.warmup)),
                ("sample_interval", Json::U64(params.interval)),
                ("stable_artifacts_identical_engines", Json::Bool(true)),
                ("sampled_cis_cover_exact_ipc", Json::Bool(true)),
            ]),
        ),
        (
            "paths",
            Json::obj(vec![
                ("interpreted", measured_json(&interp)),
                ("compiled_exact", measured_json(&compiled)),
                ("sampled", measured_json(&sampled)),
            ]),
        ),
        (
            "speedup_vs_interpreted",
            Json::obj(vec![
                ("compiled_exact", Json::F64(compiled_speedup)),
                ("sampled", Json::F64(sampled_speedup)),
            ]),
        ),
    ]);
    let path = Path::new(guardspec_harness::DEFAULT_RESULTS_DIR).join("BENCH_8.json");
    match write_json_file(&path, &json) {
        Ok(()) => eprintln!("[artifact] {}", path.display()),
        Err(e) => {
            eprintln!("[artifact] {} write failed: {e}", path.display());
            std::process::exit(1);
        }
    }
}
