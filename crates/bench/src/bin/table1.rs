//! Regenerates Table 1: benchmark characteristics.

use guardspec_bench::{finish_artifacts, harness_args, hr, run_options, table1_row_from_profile};
use guardspec_harness::{run_experiment, ExperimentSpec};

fn main() {
    let args = harness_args();
    let scale = args.scale;
    let spec = ExperimentSpec::profiles_only("table1", scale);
    let result = run_experiment(&spec, &run_options(&args));
    println!("Table 1: Benchmark characteristics (scale {scale:?})");
    hr(78);
    println!(
        "{:<12} {:>22} {:>14} {:>22}",
        "Benchmark", "Dynamic Instr (M)", "Branches (%)", "Correctly predicted (%)"
    );
    hr(78);
    for (w, wr) in spec.workloads.iter().zip(&result.workloads) {
        let row = table1_row_from_profile(w, &wr.profile);
        println!(
            "{:<12} {:>22.2} {:>14.2} {:>22.2}",
            row.name, row.dynamic_millions, row.branch_pct, row.predicted_pct
        );
    }
    hr(78);
    println!("Paper (for shape comparison):");
    println!("  Compress 0.41M 20.81% 91.98% | Espresso 786.58M 19.26% 94.57%");
    println!("  Xlisp 5256.53M 23.12% 89.21% | Grep 0.31M 22.28% 92.0%");
    finish_artifacts(&result, &args);
}
