//! Regenerates Table 3: reservation-station usage summary under the three
//! schemes (2-bit BP / proposed / perfect BP).

use guardspec_bench::{finish_artifacts, harness_args, hr, run_options};
use guardspec_harness::{run_experiment, ExperimentSpec};
use guardspec_sim::QueueKind;

fn main() {
    let args = harness_args();
    let scale = args.scale;
    let spec = ExperimentSpec::three_schemes("table3", scale);
    let result = run_experiment(&spec, &run_options(&args));
    println!("Table 3: Reservation Station Usage Summary (scale {scale:?})");
    println!("(% of cycles each reservation buffer is full, per scheme)");
    hr(100);
    println!(
        "{:<12} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "", "BR", "LDST", "ALU", "BR", "LDST", "ALU", "BR", "LDST", "ALU"
    );
    println!(
        "{:<12} | {:^26} | {:^26} | {:^26}",
        "Benchmark", "2-bit BP", "Proposed", "Perfect BP"
    );
    hr(100);
    for w in &result.workloads {
        print!("{:<12}", w.name);
        for r in result.cells_for(&w.name) {
            print!(
                " | {:>8.2} {:>8.3} {:>8.3}",
                r.stats.rs_full_pct(QueueKind::Branch),
                r.stats.rs_full_pct(QueueKind::LoadStore),
                r.stats.rs_full_pct(QueueKind::Integer),
            );
        }
        println!();
    }
    hr(100);
    println!("Shape target (paper): BR usage 2-bit << Proposed < Perfect;");
    println!("LDST/ALU buffers rarely full on integer codes.");
    finish_artifacts(&result, &args);
}
