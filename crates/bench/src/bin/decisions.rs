//! Debug helper: print the Figure-6 decision report for every workload.
//!
//! Profiles come from the shared harness cache; the full decision list is
//! cheap and recomputed fresh from the cached profile on every run.

use guardspec_bench::{finish_artifacts, harness_args, run_options};
use guardspec_core::{transform_program, DriverOptions};
use guardspec_harness::{run_experiment, ExperimentSpec};

fn main() {
    let args = harness_args();
    let spec = ExperimentSpec::profiles_only("decisions", args.scale);
    let result = run_experiment(&spec, &run_options(&args));
    for (w, wr) in spec.workloads.iter().zip(&result.workloads) {
        let mut p = w.program.clone();
        let report = transform_program(&mut p, &wr.profile, &DriverOptions::proposed());
        println!("== {} ==", w.name);
        for d in &report.decisions {
            let behavior = match &d.behavior {
                guardspec_core::BranchBehavior::Phased { segments } => {
                    format!("Phased({} segs)", segments.len())
                }
                other => format!("{other:?}").chars().take(60).collect(),
            };
            println!(
                "  block {:>3} idx {:>2} {} rate={:.2} {:<50} -> {:?}",
                d.site.block.0,
                d.site.idx,
                if d.backward { "bwd" } else { "fwd" },
                d.taken_rate,
                behavior,
                d.action
            );
        }
    }
    finish_artifacts(&result, &args);
}
