//! Debug helper: print the Figure-6 decision report for every workload.

use guardspec_bench::{scale_from_args, workloads};
use guardspec_core::{transform_program, DriverOptions};
use guardspec_interp::profile::profile_program;

fn main() {
    let scale = scale_from_args();
    for w in workloads(scale) {
        let (profile, _) = profile_program(&w.program).expect("profile");
        let mut p = w.program.clone();
        let report = transform_program(&mut p, &profile, &DriverOptions::proposed());
        println!("== {} ==", w.name);
        for d in &report.decisions {
            let behavior = match &d.behavior {
                guardspec_core::BranchBehavior::Phased { segments } => {
                    format!("Phased({} segs)", segments.len())
                }
                other => format!("{other:?}").chars().take(60).collect(),
            };
            println!(
                "  block {:>3} idx {:>2} {} rate={:.2} {:<50} -> {:?}",
                d.site.block.0,
                d.site.idx,
                if d.backward { "bwd" } else { "fwd" },
                d.taken_rate,
                behavior,
                d.action
            );
        }
    }
}
