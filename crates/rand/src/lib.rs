//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the *exact* API surface it consumes: `SmallRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, and `Rng::gen_bool`.  The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic for a
//! given seed, which is all the workloads require (their golden models
//! consume the same stream, so inputs and expected results stay in lockstep).
//!
//! The stream differs from upstream `rand`'s `SmallRng`, so absolute workload
//! inputs differ from a crates.io build; every consumer in this repo derives
//! its expectations from the same stream, so nothing observable breaks.

pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng::from_u64(seed)
        }
    }
}

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, n)` without the low-bit bias of a plain modulo
/// (Lemire's multiply-shift rejection method, simplified).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let t = n.wrapping_neg() % n;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

int_range! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50..50i64);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(6..24usize);
            assert!((6..24).contains(&u));
            let f = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            let b = rng.gen_range(0..4u8);
            assert!(b < 4);
        }
    }

    #[test]
    fn gen_bool_rate_sane() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.4)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.37..0.43).contains(&rate), "rate {rate}");
    }

    #[test]
    fn distribution_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
