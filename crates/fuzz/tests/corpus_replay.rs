//! Replay every persisted corpus case through the full differential oracle.
//!
//! Each `tests/corpus/*.case` file at the repository root is a regression:
//! either a shrunk reproducer for a fixed miscompile, or a seed case pinning
//! generator coverage.  All of them must run divergence-free.

use guardspec_fuzz::{corpus_dir_from, list_cases, run_case, Case, Thoroughness};

#[test]
fn corpus_replays_clean() {
    let dir = corpus_dir_from(env!("CARGO_MANIFEST_DIR"));
    let cases = list_cases(&dir);
    assert!(
        !cases.is_empty(),
        "empty corpus at {} — the repo ships seed cases",
        dir.display()
    );
    let mut failures = Vec::new();
    for path in &cases {
        let case = Case::load(path).unwrap_or_else(|e| panic!("{e}"));
        let res = run_case(&case.params, case.seed, Thoroughness::Full);
        if !res.ok() {
            let details: Vec<String> = res
                .findings
                .iter()
                .map(|f| format!("[{}] {}", f.variant, f.detail))
                .collect();
            failures.push(format!("{}:\n  {}", path.display(), details.join("\n  ")));
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus case(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
