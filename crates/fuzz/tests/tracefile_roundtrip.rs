//! Property test: the binary trace codec round-trips the retired trace of
//! arbitrary generated programs exactly — every entry, every digest — and
//! its checksum catches single-byte corruption of real-world blobs, not
//! just the synthetic ones the unit tests build by hand.

use guardspec_fuzz::{case_seed, generate, ShapeParams};
use guardspec_interp::trace::trace_program;
use guardspec_interp::tracefile::{self, TraceFileError};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const CASES: u64 = 24;
const BASE_SEED: u64 = 0x7ace_f11e;

#[test]
fn generated_traces_roundtrip_exactly() {
    let mut nonempty = 0u32;
    for i in 0..CASES {
        let seed = case_seed(BASE_SEED, i);
        let mut rng = SmallRng::seed_from_u64(seed);
        let params = ShapeParams::sample(&mut rng);
        let prog = generate(&params, seed);
        let (layout, entries, _exec) = trace_program(&prog).expect("trace");
        let exec_digest = seed ^ 0x5151_5151;

        let bytes = tracefile::encode(&layout, entries.iter(), exec_digest);
        let dec = tracefile::decode(&bytes)
            .unwrap_or_else(|e| panic!("case {i} (seed {seed:#x}): decode failed: {e:?}"));

        assert_eq!(dec.num_sites, layout.num_sites() as u32, "case {i}");
        assert_eq!(dec.layout_digest, tracefile::layout_digest(&layout));
        assert_eq!(dec.exec_digest, exec_digest, "case {i}");
        assert_eq!(dec.trace.len(), entries.len() as u64, "case {i}");
        let decoded: Vec<_> = dec.trace.iter().copied().collect();
        assert_eq!(decoded, entries, "case {i} (seed {seed:#x}) entries differ");
        if !entries.is_empty() {
            nonempty += 1;
        }
    }
    assert!(
        nonempty >= CASES as u32 / 2,
        "generator produced mostly empty traces; property is vacuous"
    );
}

#[test]
fn generated_blobs_reject_corruption_and_truncation() {
    // One representative non-trivial case; flip a byte at a spread of
    // offsets and truncate at a spread of lengths.  Every mutation must be
    // rejected — a blob that decodes must be the blob that was written.
    let seed = case_seed(BASE_SEED, 7);
    let mut rng = SmallRng::seed_from_u64(seed);
    let params = ShapeParams::sample(&mut rng);
    let prog = generate(&params, seed);
    let (layout, entries, _) = trace_program(&prog).expect("trace");
    assert!(!entries.is_empty(), "pick a seed with a non-empty trace");
    let bytes = tracefile::encode(&layout, entries.iter(), 42);

    for step in [1usize, 7, 97] {
        for off in (0..bytes.len()).step_by(step) {
            let mut bad = bytes.clone();
            bad[off] ^= 0x20;
            assert!(
                tracefile::decode(&bad).is_err(),
                "flipping byte {off} went undetected"
            );
        }
    }
    for len in (0..bytes.len()).step_by(13) {
        match tracefile::decode(&bytes[..len]) {
            Err(_) => {}
            Ok(_) => panic!("truncation to {len} bytes went undetected"),
        }
    }
    // Trailing garbage is not silently ignored either.
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(matches!(
        tracefile::decode(&padded),
        Err(TraceFileError::Truncated
            | TraceFileError::TrailingBytes(_)
            | TraceFileError::BadChecksum { .. })
    ));
}
