//! Manual debugging aid: dump a corpus case's original and transformed
//! programs plus any memory / store-trace diffs.
//!
//! ```text
//! GUARDSPEC_CASE=tests/corpus/foo.case GUARDSPEC_VARIANT=proposed \
//!   cargo test -p guardspec-fuzz --test inspect -- --ignored --nocapture
//! ```

use guardspec_core::{transform_program, DriverOptions};
use guardspec_fuzz::{behavior_of, corpus_dir_from, generate, run_case, Case, Thoroughness};
use guardspec_interp::profile::profile_program;

#[test]
#[ignore]
fn dump_case() {
    let Some(name) = std::env::var_os("GUARDSPEC_CASE") else {
        eprintln!("set GUARDSPEC_CASE to a .case path (absolute, or relative to tests/corpus)");
        return;
    };
    let mut path = std::path::PathBuf::from(&name);
    if !path.exists() {
        path = corpus_dir_from(env!("CARGO_MANIFEST_DIR")).join(&name);
    }
    let case = Case::load(&path).unwrap_or_else(|e| panic!("{e}"));
    let prog = generate(&case.params, case.seed);
    eprintln!("==== ORIGINAL ====\n{prog}");

    let variant = std::env::var("GUARDSPEC_VARIANT").unwrap_or_else(|_| "proposed".into());
    let opts = match variant.as_str() {
        "proposed" => DriverOptions::proposed(),
        "conventional" => DriverOptions::conventional(),
        "speculation_only" => DriverOptions::speculation_only(),
        "guarded_only" => DriverOptions::guarded_only(),
        other => panic!("unknown GUARDSPEC_VARIANT {other:?}"),
    };
    let (profile, _) = profile_program(&prog).unwrap();
    let mut xf_prog = prog.clone();
    let report = transform_program(&mut xf_prog, &profile, &opts);
    eprintln!("==== TRANSFORMED ({variant}) ====\n{xf_prog}");
    eprintln!("report: {report:?}");

    let orig = behavior_of(&prog).unwrap();
    match behavior_of(&xf_prog) {
        Err(e) => eprintln!("transformed program traps: {e:?}"),
        Ok(xf) => {
            for (i, (a, b)) in orig.mem.iter().zip(&xf.mem).enumerate() {
                if a != b {
                    eprintln!("mem[{i}]: orig {a} xf {b}");
                }
            }
            for i in 0..orig.stores.len().max(xf.stores.len()) {
                let (a, b) = (orig.stores.get(i), xf.stores.get(i));
                if a != b {
                    eprintln!("store #{i}: orig {a:?} xf {b:?}");
                }
            }
        }
    }

    let res = run_case(&case.params, case.seed, Thoroughness::Full);
    for f in &res.findings {
        eprintln!("[{}] {}", f.variant, f.detail);
    }
    eprintln!("ok = {}", res.ok());
}
