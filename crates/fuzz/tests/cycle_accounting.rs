//! Property test for the simulator's cycle accounting: on arbitrary
//! generated programs, under every predictor scheme,
//!
//! * the bucket sums equal `stats.cycles` exactly (every cycle attributed
//!   to exactly one cause — `CycleAccounting::check` also ties per-site
//!   counters back to the aggregate mispredict statistics), and
//! * the materialized-slice, streamed and shared-chunk trace paths produce
//!   identical accounting (the observer sees the same retired stream no
//!   matter how it is delivered).

use guardspec_fuzz::{case_seed, generate, ShapeParams};
use guardspec_interp::trace::trace_program;
use guardspec_interp::{ChunkRecorder, Interp};
use guardspec_predict::Scheme;
use guardspec_sim::{
    prepare_program, simulate_program_streamed_observed_in, simulate_shared_observed_in,
    simulate_trace_observed, CycleAccounting, MachineConfig, SimContext,
};

const CASES: u64 = 16;
const BASE_SEED: u64 = 0xacc0_0171;

#[test]
fn bucket_sums_equal_cycles_across_all_trace_paths() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let cfg = MachineConfig::r10000();
    let mut nontrivial = 0u32;
    for i in 0..CASES {
        let seed = case_seed(BASE_SEED, i);
        let mut rng = SmallRng::seed_from_u64(seed);
        let params = ShapeParams::sample(&mut rng);
        let prog = generate(&params, seed);

        let (layout, entries, _exec) = trace_program(&prog).expect("trace");
        if entries.len() > 100 {
            nontrivial += 1;
        }

        // Shared chunks come from a second interpretation of the same
        // (deterministic) program.
        let mut recorder = ChunkRecorder::new(&prog);
        Interp::new(&prog)
            .run_with(&mut recorder)
            .expect("interpret");
        let shared = recorder.finish();
        let prep = prepare_program(&prog);

        for scheme in Scheme::ALL {
            let mut slice_acct = CycleAccounting::new();
            let slice_stats =
                simulate_trace_observed(&prog, &layout, &entries, scheme, &cfg, &mut slice_acct)
                    .expect("simulate slice");
            // The invariant set: buckets sum to cycles, site counters sum
            // to the aggregate mispredict statistics.
            slice_acct.check(&slice_stats);

            let mut ctx = SimContext::new(&cfg);
            let mut stream_acct = CycleAccounting::new();
            let (stream_stats, _) = simulate_program_streamed_observed_in(
                &mut ctx,
                &prog,
                scheme,
                &cfg,
                &mut stream_acct,
            )
            .expect("simulate streamed");

            let mut shared_acct = CycleAccounting::new();
            let shared_stats = simulate_shared_observed_in(
                &mut ctx,
                &prep,
                &shared,
                scheme,
                &cfg,
                &mut shared_acct,
            )
            .expect("simulate shared");

            assert_eq!(
                slice_stats, stream_stats,
                "case {i} {scheme:?}: slice vs streamed stats"
            );
            assert_eq!(
                slice_stats, shared_stats,
                "case {i} {scheme:?}: slice vs shared stats"
            );
            assert_eq!(
                slice_acct, stream_acct,
                "case {i} {scheme:?}: slice vs streamed accounting"
            );
            assert_eq!(
                slice_acct, shared_acct,
                "case {i} {scheme:?}: slice vs shared accounting"
            );
        }
    }
    assert!(
        nontrivial >= CASES as u32 / 2,
        "generator produced mostly trivial traces; property is vacuous"
    );
}
