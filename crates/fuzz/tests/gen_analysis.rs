//! Structural-analysis invariants over generated programs: every hammock
//! reported on a random (including cross-jumped, "irreducible-adjacent")
//! CFG must satisfy its defining dominance properties.

use guardspec_analysis::{find_hammocks, Cfg, DomTree};
use guardspec_fuzz::gen::{generate, ShapeParams};
use rand::prelude::*;

#[test]
fn hammocks_on_generated_cfgs_satisfy_dominance() {
    let mut rng = SmallRng::seed_from_u64(0xd011_ab1e);
    let mut hammocks_seen = 0usize;
    for case in 0..150u64 {
        let mut params = ShapeParams::sample(&mut rng);
        params.cross_jumps = true; // force the irregular shapes
        let prog = generate(&params, 0x5eed ^ case);
        for f in &prog.funcs {
            let cfg = Cfg::build(f);
            let dom = DomTree::dominators(&cfg);
            for h in find_hammocks(f, &cfg) {
                hammocks_seen += 1;
                for arm in h.arm_blocks() {
                    // The head must dominate each arm, and an arm is
                    // single-entry/single-exit: only pred is the head, only
                    // succ is the join (this is what makes predication of
                    // the arm bodies control-equivalent).
                    assert!(
                        dom.dominates(h.head, arm),
                        "{}: head {:?} must dominate arm {:?}",
                        f.name,
                        h.head,
                        arm
                    );
                    assert_eq!(cfg.preds(arm), [h.head], "{}: arm preds", f.name);
                    assert_eq!(cfg.succs(arm), [h.join], "{}: arm succs", f.name);
                }
                // NOTE: the head need NOT dominate the join — a cross jump
                // re-points the join at an outer merge with other entries
                // (see crates/analysis/tests/irreducible.rs).  What must
                // hold: any join predecessor the head dominates is part of
                // the hammock itself, so if-conversion removes no other
                // dominated entry into the join.
                let ok_preds: Vec<_> = h.arm_blocks().chain([h.head]).collect();
                for p in cfg.preds(h.join) {
                    assert!(
                        ok_preds.contains(p) || !dom.dominates(h.head, *p),
                        "{}: join pred {:?} inside the hammock region",
                        f.name,
                        p
                    );
                }
            }
        }
    }
    assert!(
        hammocks_seen > 50,
        "expected generated programs to contain hammocks, saw {hammocks_seen}"
    );
}
