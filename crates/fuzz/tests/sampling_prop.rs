//! Property tests for SMARTS-style interval sampling: over a population of
//! generated programs, the per-run 95% confidence interval (which already
//! includes the 2%-of-mean bias allowance) must cover the exact-run IPC at
//! roughly its nominal rate, and the interval math must be bit-for-bit
//! deterministic — the estimate is a pure function of (trace, params), so
//! re-running in a reused context, or under any `--jobs` schedule, cannot
//! change a bit of it.

use guardspec_fuzz::{generate, ShapeParams};
use guardspec_interp::trace::{trace_program, SharedTrace};
use guardspec_predict::Scheme;
use guardspec_sim::{
    simulate_compiled_shared_in, simulate_sampled_in, CompiledProgram, MachineConfig, SampleParams,
    SimContext,
};

/// Shape with every feature on and a long outer loop, so traces are long
/// enough for multiple detail windows.
fn shape() -> ShapeParams {
    ShapeParams {
        depth: 2,
        stmts: 3,
        regions: 3,
        max_trip: 3,
        mem_words: 64,
        repeat: 160,
        helpers: 1,
        fp: true,
        fpdiv: true,
        cross_jumps: true,
        guards: true,
    }
}

#[test]
fn sampled_ci_covers_exact_ipc_at_nominal_rate() {
    let cfg = MachineConfig::r10000();
    let params = shape();
    // A *prime* interval keeps the systematic sampler from phase-locking
    // onto generated loop periods (which are overwhelmingly powers of two
    // and small composites): successive windows precess through loop
    // phases instead of resampling the same one.
    let sp = SampleParams {
        detail: 24,
        warmup: 24,
        interval: 127,
    };
    let total = 100u64;
    let mut covered = 0u64;
    let mut multi_window = 0u64;
    let mut ctx = SimContext::new(&cfg);
    for seed in 0..total {
        let prog = generate(&params, seed);
        let (_, trace, _) = trace_program(&prog).expect("generated program runs");
        let shared = SharedTrace::from_entries(trace.iter().copied());
        let comp = CompiledProgram::build(&prog);
        let exact = simulate_compiled_shared_in(&mut ctx, &comp, &shared, Scheme::TwoBit, &cfg)
            .expect("exact run");
        let (_, s1) = simulate_sampled_in(&mut ctx, &comp, &shared, Scheme::TwoBit, &cfg, sp)
            .expect("sampled run");
        // Determinism: an immediate re-run in the same (reused) context
        // reproduces the estimate bit for bit.
        let (_, s2) = simulate_sampled_in(&mut ctx, &comp, &shared, Scheme::TwoBit, &cfg, sp)
            .expect("sampled rerun");
        assert_eq!(s1.windows, s2.windows, "seed {seed}");
        assert_eq!(s1.measured_entries, s2.measured_entries, "seed {seed}");
        assert_eq!(
            s1.ipc_mean.to_bits(),
            s2.ipc_mean.to_bits(),
            "seed {seed}: ipc_mean not deterministic"
        );
        assert_eq!(
            s1.ipc_ci95.to_bits(),
            s2.ipc_ci95.to_bits(),
            "seed {seed}: ipc_ci95 not deterministic"
        );
        if s1.windows >= 2 {
            multi_window += 1;
        }
        if (s1.ipc_mean - exact.ipc()).abs() <= s1.ipc_ci95 {
            covered += 1;
        } else {
            eprintln!(
                "seed {seed}: exact {:.4} outside {:.4} ± {:.4} ({} windows)",
                exact.ipc(),
                s1.ipc_mean,
                s1.ipc_ci95,
                s1.windows
            );
        }
    }
    // The population must actually exercise the estimator, not the exact
    // fallback (which covers trivially).
    assert!(
        multi_window >= 80,
        "only {multi_window}/{total} programs produced >= 2 windows; traces too short"
    );
    assert!(
        covered >= 95,
        "CI covered the exact IPC for only {covered}/{total} programs (need >= 95)"
    );
}
