//! # guardspec-fuzz
//!
//! Differential fuzzing for the transformation pipeline: a seeded random
//! CFG-shape generator ([`gen`]), a transform-equivalence oracle ([`oracle`])
//! that checks every `DriverOptions` preset plus randomized option mixes
//! against the interpreter and both simulation paths, coordinate-descent
//! shrinking of failing cases ([`shrink`]), and a replayable regression
//! corpus ([`corpus`], persisted under `tests/corpus/`).
//!
//! Long runs go through the `fuzz` binary:
//!
//! ```text
//! cargo run --release -p guardspec-fuzz --bin fuzz -- --cases 1000 --seed 7 --jobs 4
//! ```
//!
//! Case seeds are derived from `(base seed, case index)`, so a run is
//! deterministic and every reported case replays in isolation regardless of
//! `--jobs`.  DESIGN.md §9 documents the generator grammar, the equivalence
//! definition, and the shrinking strategy.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use corpus::{corpus_dir_from, list_cases, Case};
pub use gen::{generate, ShapeParams};
pub use oracle::{behavior_of, check_equivalence, run_case, Behavior, CaseResult, Thoroughness};
pub use shrink::shrink;

/// Derive the per-case seed from the run's base seed and the case index
/// (SplitMix64 over the pair, so neighboring indices decorrelate).
pub fn case_seed(base: u64, index: u64) -> u64 {
    let mut x = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    #[test]
    fn case_seeds_decorrelate() {
        let a = super::case_seed(7, 0);
        let b = super::case_seed(7, 1);
        let c = super::case_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, super::case_seed(7, 0));
    }
}
