//! Long-run differential fuzzing driver.
//!
//! ```text
//! fuzz [--cases N] [--seed S] [--jobs N] [--quick] [--no-shrink]
//! ```
//!
//! Runs `N` generated cases through the oracle on the harness work-stealing
//! pool.  Output is deterministic for a given `(--cases, --seed)` at any
//! `--jobs` value, because each case's parameters and data seed derive from
//! `(base seed, case index)` alone.  On divergence the first failing case
//! (lowest index) is shrunk by coordinate descent and written as a
//! replayable `.case` file under `tests/corpus/`; the process exits 1.

use guardspec_fuzz::oracle::Thoroughness;
use guardspec_fuzz::{case_seed, Case, CaseResult, ShapeParams};
use guardspec_harness::JobGraph;
use rand::prelude::*;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Args {
    cases: u64,
    seed: u64,
    jobs: usize,
    quick: bool,
    no_shrink: bool,
}

fn parse_args() -> Args {
    match try_parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: fuzz [--cases N] [--seed S] [--jobs N] [--quick] [--no-shrink]");
            std::process::exit(2);
        }
    }
}

fn try_parse(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        cases: 1000,
        seed: 1,
        jobs: 0,
        quick: false,
        no_shrink: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--cases" => {
                out.cases = value("--cases")?
                    .parse()
                    .map_err(|_| "bad --cases (want a non-negative integer)".to_string())?
            }
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed (want a non-negative integer)".to_string())?
            }
            "--jobs" => {
                out.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs (want a non-negative integer)".to_string())?
            }
            "--quick" => out.quick = true,
            "--no-shrink" => out.no_shrink = true,
            other => return Err(guardspec_harness::args::unknown_argument(other)),
        }
    }
    Ok(out)
}

/// The parameter point for case `i` of a run (deterministic).
fn params_for(base_seed: u64, i: u64) -> (ShapeParams, u64) {
    let seed = case_seed(base_seed, i);
    let mut rng = SmallRng::seed_from_u64(seed);
    (ShapeParams::sample(&mut rng), seed)
}

fn main() {
    let args = parse_args();
    let thoroughness = if args.quick {
        Thoroughness::Quick
    } else {
        Thoroughness::Full
    };

    let n = args.cases;
    let results: Arc<Mutex<Vec<Option<CaseResult>>>> = Arc::new(Mutex::new(vec![None; n as usize]));

    // Chunk the index space so the pool has a few tasks per worker without
    // per-case locking overhead.
    let workers = if args.jobs == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        args.jobs
    };
    let chunks = (workers * 4).max(1) as u64;
    let chunk_len = n.div_ceil(chunks).max(1);

    let mut graph = JobGraph::new();
    let mut start = 0u64;
    while start < n {
        let end = (start + chunk_len).min(n);
        let results = Arc::clone(&results);
        let base_seed = args.seed;
        graph.add(&[], move || {
            for i in start..end {
                let (params, seed) = params_for(base_seed, i);
                let res = guardspec_fuzz::run_case(&params, seed, thoroughness);
                results.lock().unwrap()[i as usize] = Some(res);
            }
        });
        start = end;
    }
    let t0 = std::time::Instant::now();
    graph.execute(args.jobs);
    let wall = t0.elapsed();

    let results = Arc::try_unwrap(results)
        .expect("pool done")
        .into_inner()
        .unwrap();
    let mut retired_total: u64 = 0;
    let mut first_failure: Option<CaseResult> = None;
    let mut failures = 0usize;
    for res in results.into_iter().flatten() {
        retired_total += res.retired;
        if !res.ok() {
            failures += 1;
            if first_failure.is_none() {
                first_failure = Some(res);
            }
        }
    }

    eprintln!(
        "[fuzz] {} cases, {:.1}M instructions retired, {} divergence(s), {:.2}s",
        n,
        retired_total as f64 / 1e6,
        failures,
        wall.as_secs_f64()
    );

    let Some(fail) = first_failure else {
        println!("fuzz: {n} cases OK (seed {})", args.seed);
        return;
    };

    eprintln!(
        "[fuzz] FIRST DIVERGENCE at params {:?} seed {}:",
        fail.params, fail.seed
    );
    for f in &fail.findings {
        eprintln!("[fuzz]   [{}] {}", f.variant, f.detail);
    }

    let (params, seed, shrunk) = if args.no_shrink {
        (fail.params, fail.seed, fail)
    } else {
        eprintln!("[fuzz] shrinking...");
        guardspec_fuzz::shrink(&fail.params, fail.seed, thoroughness)
    };
    let len = guardspec_fuzz::shrink::shrunk_len(&params, seed);
    let mut note = format!(
        "shrunk failing case ({len} static instructions); replay: cargo test -p guardspec-fuzz"
    );
    for f in &shrunk.findings {
        note.push_str(&format!("\n[{}] {}", f.variant, f.detail));
    }
    let case = Case::new(params, seed, note);
    let dir = guardspec_fuzz::corpus::corpus_dir_from(env!("CARGO_MANIFEST_DIR"));
    let path = dir.join(format!("shrunk-{seed:016x}.case"));
    match case.save(&path) {
        Ok(()) => eprintln!(
            "[fuzz] wrote {} ({} static instructions) — fix the bug, then keep it as a regression",
            path.display(),
            len
        ),
        Err(e) => eprintln!("[fuzz] could not write case file: {e}"),
    }
    println!(
        "fuzz: FAILED — {failures} of {n} cases diverged; minimized case: params {params:?} seed {seed}"
    );
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::try_parse;

    #[test]
    fn unknown_flags_are_rejected() {
        let err = try_parse(["--case", "5"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(err.contains("unknown argument"), "got {err:?}");
        assert!(err.contains("--case"), "got {err:?}");
    }

    #[test]
    fn known_flags_still_parse() {
        let a = try_parse(
            ["--cases", "7", "--seed", "3", "--quick"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!((a.cases, a.seed), (7, 3));
        assert!(a.quick);
    }
}
