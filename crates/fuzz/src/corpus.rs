//! Replayable case files and the persisted regression corpus.
//!
//! A case file is a tiny `key = value` text format (one `ShapeParams` plus a
//! seed), because the generator is deterministic: `(params, seed)` *is* the
//! program.  Comment lines (`#`) carry free-text context — why the case was
//! saved, what it diverged on — and are ignored by the parser, so a fixed
//! bug's case file keeps its original diagnosis as documentation.
//!
//! The corpus lives in `tests/corpus/*.case` at the repository root and is
//! replayed by `crates/fuzz/tests/corpus_replay.rs` as part of plain
//! `cargo test`.

use crate::gen::ShapeParams;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One replayable case: a parameter point, a seed, and a human note.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Case {
    pub params: ShapeParams,
    pub seed: u64,
    /// Free-text context preserved in the file's comment header.
    pub note: String,
}

impl Case {
    pub fn new(params: ShapeParams, seed: u64, note: impl Into<String>) -> Case {
        Case {
            params,
            seed,
            note: note.into(),
        }
    }

    /// Serialize to the case-file text format.
    pub fn serialize(&self) -> String {
        let mut s = String::from("# guardspec fuzz case v1\n");
        for line in self.note.lines() {
            let _ = writeln!(s, "# {line}");
        }
        let p = &self.params;
        let _ = writeln!(s, "seed = {}", self.seed);
        let _ = writeln!(s, "depth = {}", p.depth);
        let _ = writeln!(s, "stmts = {}", p.stmts);
        let _ = writeln!(s, "regions = {}", p.regions);
        let _ = writeln!(s, "max_trip = {}", p.max_trip);
        let _ = writeln!(s, "mem_words = {}", p.mem_words);
        let _ = writeln!(s, "repeat = {}", p.repeat);
        let _ = writeln!(s, "helpers = {}", p.helpers);
        let _ = writeln!(s, "fp = {}", p.fp);
        let _ = writeln!(s, "fpdiv = {}", p.fpdiv);
        let _ = writeln!(s, "cross_jumps = {}", p.cross_jumps);
        let _ = writeln!(s, "guards = {}", p.guards);
        s
    }

    /// Parse the case-file text format; unknown keys are errors (they mean
    /// the format grew and this binary is stale).
    pub fn parse(text: &str) -> Result<Case, String> {
        let mut params = ShapeParams::minimal();
        let mut seed: Option<u64> = None;
        let mut note = String::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(c) = line.strip_prefix('#') {
                let c = c.trim();
                if ln > 0 && !c.is_empty() {
                    if !note.is_empty() {
                        note.push('\n');
                    }
                    note.push_str(c);
                }
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", ln + 1))?;
            let (k, v) = (k.trim(), v.trim());
            let int = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("line {}: bad integer {v:?}", ln + 1))
            };
            let boolean = |v: &str| match v {
                "true" => Ok(true),
                "false" => Ok(false),
                _ => Err(format!("line {}: bad bool {v:?}", ln + 1)),
            };
            match k {
                "seed" => seed = Some(int(v)?),
                "depth" => params.depth = int(v)? as u8,
                "stmts" => params.stmts = int(v)? as u8,
                "regions" => params.regions = int(v)? as u8,
                "max_trip" => params.max_trip = int(v)? as u8,
                "mem_words" => params.mem_words = int(v)? as u16,
                "repeat" => params.repeat = int(v)? as u8,
                "helpers" => params.helpers = int(v)? as u8,
                "fp" => params.fp = boolean(v)?,
                "fpdiv" => params.fpdiv = boolean(v)?,
                "cross_jumps" => params.cross_jumps = boolean(v)?,
                "guards" => params.guards = boolean(v)?,
                other => return Err(format!("line {}: unknown key {other:?}", ln + 1)),
            }
        }
        Ok(Case {
            params,
            seed: seed.ok_or("missing `seed`")?,
            note,
        })
    }

    /// Load a case file.
    pub fn load(path: &Path) -> Result<Case, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Case::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write a case file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.serialize())
    }
}

/// The conventional corpus directory, relative to a crate inside
/// `crates/` (used by tests) or to the repository root (used by the bin).
pub fn corpus_dir_from(manifest_dir: &str) -> PathBuf {
    let m = Path::new(manifest_dir);
    let root = if m.ends_with("crates/fuzz") {
        m.parent().and_then(Path::parent).unwrap_or(m)
    } else {
        m
    };
    root.join("tests").join("corpus")
}

/// All `.case` files in a corpus directory, sorted by file name for
/// deterministic replay order.  A missing directory is an empty corpus.
pub fn list_cases(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().map(|x| x == "case").unwrap_or(false))
            .collect(),
        Err(_) => Vec::new(),
    };
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = Case::new(
            ShapeParams {
                depth: 2,
                stmts: 3,
                regions: 4,
                max_trip: 5,
                mem_words: 64,
                repeat: 10,
                helpers: 1,
                fp: true,
                fpdiv: true,
                cross_jumps: false,
                guards: true,
            },
            0xdead_beef,
            "divergence: proposed store trace mismatch\nsecond line",
        );
        let c2 = Case::parse(&c.serialize()).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Case::parse("seed = banana").is_err());
        assert!(Case::parse("depth = 1").unwrap_err().contains("seed"));
        assert!(Case::parse("seed = 1\nwut = 2").is_err());
        assert!(Case::parse("just some words").is_err());
    }

    #[test]
    fn corpus_dir_resolves_from_crate_and_root() {
        let from_crate = corpus_dir_from("/repo/crates/fuzz");
        assert_eq!(from_crate, Path::new("/repo/tests/corpus"));
        let from_root = corpus_dir_from("/repo");
        assert_eq!(from_root, Path::new("/repo/tests/corpus"));
    }
}
