//! Seeded random-CFG generator.
//!
//! Emits arbitrary *valid* guardspec programs whose shapes — not just data —
//! vary with the seed: nested and sequential diamonds, triangles (hammocks),
//! bounded multi-exit loops, `jtab` switch dispatch, leaf helper calls,
//! forward cross-jumps that break hammock structure, and hand-guarded
//! instructions, over a bounded memory image.
//!
//! Design constraints the generator enforces by construction:
//!
//! * **Termination.** Every loop decrements a dedicated counter register
//!   (`r20 + nesting level`) that no statement generator ever writes, and
//!   every non-loop control transfer is forward.  Dynamic length is bounded
//!   by `regions * max_trip^nesting * stmts`, far below interpreter fuel.
//! * **Memory safety.** Every load/store base is masked with `andi` to
//!   `[0, mem_words/2)` and offsets stay below `mem_words/2`, so addresses
//!   are always in bounds — on *every* path, which also keeps speculatively
//!   hoisted loads from trapping.
//! * **Bounded register usage.** Only `r1..=r24`, `f1..=f6` and `p1..=p5`
//!   are referenced, so the transform driver's rename pool (registers never
//!   referenced in the function, preferring `r32..r63`) is never empty.
//! * **Observable outputs.** The epilogue spills every accumulator, noise,
//!   and scratch register the program wrote to fixed memory addresses, so
//!   values that matter are live at `halt` and land in the final memory
//!   image (unwritten registers cannot diverge and are skipped to keep
//!   shrunk cases small; see
//!   `oracle::check_equivalence` for why register files are not compared
//!   across a transform).

use guardspec_ir::builder::{FuncBuilder, ProgramBuilder};
use guardspec_ir::insn::{AluKind, Opcode, SetCond};
use guardspec_ir::reg::{f, p, r, FltReg, IntReg, PredReg};
use guardspec_ir::{Program, Reg};
use rand::prelude::*;

/// Shape parameters: everything about a case except its data seed.  Each
/// field is independently shrinkable toward its minimum (see `crate::shrink`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeParams {
    /// Maximum region-nesting depth (0 = straight-line only).
    pub depth: u8,
    /// Straight-line statements per emitted batch (1..).
    pub stmts: u8,
    /// Top-level regions in `main` (1..).
    pub regions: u8,
    /// Loop trip counts are drawn from `2..=max_trip` (min 2).
    pub max_trip: u8,
    /// Memory image size in words; rounded up to a power of two (min 32).
    pub mem_words: u16,
    /// Whole-body outer-loop repetitions (min 1).  Drives per-branch dynamic
    /// counts high enough for the profile-feedback classifiers (segmentation
    /// windows are 16 outcomes) to actually fire.
    pub repeat: u8,
    /// Leaf helper functions callable from statement position (0..=3).
    pub helpers: u8,
    /// Emit floating-point statements.
    pub fp: bool,
    /// With `fp`, also emit `fdiv`/`fsqrt` (the long-latency FUs with a
    /// structural hazard in the simulator).  Gated separately so enabling
    /// it cannot perturb the RNG stream of pre-existing `fp` corpus cases.
    pub fpdiv: bool,
    /// Allow arms to jump to an *enclosing* join label instead of their own
    /// (produces non-hammock, "irreducible-adjacent" shapes).
    pub cross_jumps: bool,
    /// Emit hand-guarded (predicated) statements, including guarded stores.
    pub guards: bool,
}

impl ShapeParams {
    /// The smallest interesting configuration (shrinking floor).
    pub fn minimal() -> ShapeParams {
        ShapeParams {
            depth: 0,
            stmts: 1,
            regions: 1,
            max_trip: 2,
            mem_words: 16,
            repeat: 1,
            helpers: 0,
            fp: false,
            fpdiv: false,
            cross_jumps: false,
            guards: false,
        }
    }

    /// Draw a random parameter point (shape variation across cases).
    pub fn sample(rng: &mut SmallRng) -> ShapeParams {
        ShapeParams {
            depth: rng.gen_range(0..=3u8),
            stmts: rng.gen_range(1..=5u8),
            regions: rng.gen_range(1..=6u8),
            max_trip: rng.gen_range(2..=7u8),
            mem_words: 1 << rng.gen_range(5..=7u8), // 32..=128
            repeat: match rng.gen_range(0..4u8) {
                0 => 1,
                1 => rng.gen_range(2..=8u8),
                2 => rng.gen_range(9..=32u8),
                _ => rng.gen_range(33..=96u8),
            },
            helpers: rng.gen_range(0..=2u8),
            fp: rng.gen_bool(0.4),
            fpdiv: rng.gen_bool(0.3),
            cross_jumps: rng.gen_bool(0.3),
            guards: rng.gen_bool(0.5),
        }
    }

    /// Effective memory size: power of two, and at least 32 words so the
    /// epilogue's spill area (22 words with fp on) always fits.
    fn mem_pow2(&self) -> u64 {
        self.mem_words.max(32).next_power_of_two() as u64
    }
}

// Register conventions (see module docs).
const SCRATCH: core::ops::RangeInclusive<u8> = 1..=12;
const ACCUM: core::ops::RangeInclusive<u8> = 13..=15;
const NOISE: u8 = 16;
const ADDR: u8 = 17;
const COUNTER_BASE: u8 = 20; // r20..r22: loop counters by nesting level
const MAX_LOOP_NEST: u8 = 3;
const REPEAT: u8 = 24; // r24: whole-body outer-loop counter

struct Gen {
    rng: SmallRng,
    params: ShapeParams,
    next_label: u32,
    /// Join labels of enclosing regions, innermost last (cross-jump targets).
    pending_joins: Vec<String>,
    helper_names: Vec<String>,
    mask: i64,
    max_off: i64,
}

impl Gen {
    fn label(&mut self, tag: &str) -> String {
        self.next_label += 1;
        format!("{tag}{}", self.next_label)
    }

    fn scratch(&mut self) -> IntReg {
        r(self.rng.gen_range(*SCRATCH.start()..=*SCRATCH.end()))
    }

    fn accum(&mut self) -> IntReg {
        r(self.rng.gen_range(*ACCUM.start()..=*ACCUM.end()))
    }

    /// Any readable int register (scratch, accumulator, noise, or r0).
    fn source(&mut self) -> IntReg {
        match self.rng.gen_range(0..8u8) {
            0 => r(0),
            1..=4 => self.scratch(),
            5..=6 => self.accum(),
            _ => r(NOISE),
        }
    }

    fn pred(&mut self) -> PredReg {
        p(self.rng.gen_range(1..=5u8))
    }

    fn flt(&mut self) -> FltReg {
        f(self.rng.gen_range(1..=6u8))
    }

    /// Stir the noise register: a full-period odd-multiplier LCG step plus a
    /// data-dependent xor, so branch conditions keep flipping.
    fn stir(&mut self, fb: &mut FuncBuilder) {
        let odd = (self.rng.gen_range(0..1i64 << 31) << 1) | 1;
        fb.muli(r(NOISE), r(NOISE), odd);
        match self.rng.gen_range(0..3u8) {
            0 => {
                fb.xori(r(NOISE), r(NOISE), self.rng.gen_range(0..1i64 << 16));
            }
            1 => {
                let s = self.scratch();
                fb.xor(r(NOISE), r(NOISE), s);
            }
            _ => {
                fb.addi(r(NOISE), r(NOISE), self.rng.gen_range(1..255i64));
            }
        }
    }

    /// Materialize an in-bounds address in `ADDR` and pick a safe offset.
    fn address(&mut self, fb: &mut FuncBuilder) -> i64 {
        let base = self.source();
        fb.andi(r(ADDR), base, self.mask);
        self.rng.gen_range(0..self.max_off)
    }

    /// One straight-line statement.
    fn stmt(&mut self, fb: &mut FuncBuilder) {
        let choice = self.rng.gen_range(0..100u8);
        match choice {
            0..=29 => {
                // Integer ALU, register or immediate form.
                let kinds = [
                    AluKind::Add,
                    AluKind::Sub,
                    AluKind::And,
                    AluKind::Or,
                    AluKind::Xor,
                    AluKind::Nor,
                    AluKind::Slt,
                    AluKind::Sltu,
                    AluKind::Mul,
                ];
                let kind = kinds[self.rng.gen_range(0..kinds.len())];
                let dst = if self.rng.gen_bool(0.4) {
                    self.accum()
                } else {
                    self.scratch()
                };
                let a = self.source();
                if self.rng.gen_bool(0.5) {
                    let b = self.source();
                    fb.alu(kind, dst, a, b);
                } else {
                    fb.alui(kind, dst, a, self.rng.gen_range(-64..64i64));
                }
            }
            30..=37 => {
                // Shifts (bounded amounts).
                let dst = self.scratch();
                let a = self.source();
                let sh = self.rng.gen_range(0..16u8);
                match self.rng.gen_range(0..4u8) {
                    0 => fb.sll(dst, a, sh),
                    1 => fb.srl(dst, a, sh),
                    2 => fb.sra(dst, a, sh),
                    _ => {
                        // Variable shift: mask the amount so it stays small.
                        fb.andi(r(ADDR), self.source(), 15);
                        fb.sllv(dst, a, r(ADDR))
                    }
                };
            }
            38..=45 => {
                let dst = self.scratch();
                fb.li(dst, self.rng.gen_range(-1000..1000i64));
            }
            46..=60 => {
                // Load.
                let off = self.address(fb);
                let dst = if self.rng.gen_bool(0.3) {
                    self.accum()
                } else {
                    self.scratch()
                };
                fb.lw(dst, r(ADDR), off);
            }
            61..=75 => {
                // Store — possibly guarded.
                let off = self.address(fb);
                let src = self.source();
                if self.params.guards && self.rng.gen_bool(0.3) {
                    let pr = self.pred();
                    let expect = self.rng.gen_bool(0.5);
                    fb.setpi(self.setcond(), pr, self.source(), self.small_imm());
                    fb.push_guarded(
                        Opcode::Store {
                            src,
                            base: r(ADDR),
                            off,
                        },
                        pr,
                        expect,
                    );
                } else {
                    fb.sw(src, r(ADDR), off);
                }
            }
            76..=83 => {
                // Predicate dataflow.
                let pr = self.pred();
                match self.rng.gen_range(0..4u8) {
                    0 => {
                        let a = self.source();
                        let b = self.source();
                        fb.setp(self.setcond(), pr, a, b);
                    }
                    1 => {
                        let a = self.source();
                        let imm = self.small_imm();
                        fb.setpi(self.setcond(), pr, a, imm);
                    }
                    2 => {
                        let (a, b) = (self.pred(), self.pred());
                        if self.rng.gen_bool(0.5) {
                            fb.pand(pr, a, b);
                        } else {
                            fb.por(pr, a, b);
                        }
                    }
                    _ => {
                        let src = self.pred();
                        fb.pnot(pr, src);
                    }
                };
            }
            84..=91 => {
                if self.params.guards {
                    // Guarded ALU / cmov.
                    let pr = self.pred();
                    let expect = self.rng.gen_bool(0.5);
                    let dst = self.scratch();
                    let a = self.source();
                    if self.rng.gen_bool(0.5) {
                        fb.cmov(dst, a, pr, expect);
                    } else {
                        fb.push_guarded(
                            Opcode::AluImm {
                                kind: AluKind::Add,
                                dst,
                                a,
                                imm: self.rng.gen_range(-32..32i64),
                            },
                            pr,
                            expect,
                        );
                    }
                } else {
                    let dst = self.scratch();
                    let src = self.source();
                    fb.mov(dst, src);
                }
            }
            _ => {
                if self.params.fp {
                    self.fp_stmt(fb);
                } else {
                    self.stir(fb);
                }
            }
        }
    }

    fn fp_stmt(&mut self, fb: &mut FuncBuilder) {
        // `fpdiv` widens the draw without perturbing the 0..6 stream, so a
        // case with `fpdiv = false` generates the same program it always did.
        let arms = if self.params.fpdiv { 8u8 } else { 6u8 };
        match self.rng.gen_range(0..arms) {
            0 => {
                let d = self.flt();
                let s = self.source();
                fb.itof(d, s);
            }
            1 => {
                let (d, a, b) = (self.flt(), self.flt(), self.flt());
                if self.rng.gen_bool(0.5) {
                    fb.fadd(d, a, b);
                } else {
                    fb.fmul(d, a, b);
                }
            }
            2 => {
                let (d, a, b) = (self.flt(), self.flt(), self.flt());
                fb.fsub(d, a, b);
            }
            3 => {
                let off = self.address(fb);
                let d = self.flt();
                fb.flw(d, r(ADDR), off);
            }
            4 => {
                let off = self.address(fb);
                let s = self.flt();
                fb.fsw(s, r(ADDR), off);
            }
            5 => {
                // FtoI on possibly-huge floats is still deterministic
                // (saturating cast), but keep magnitudes tame anyway.
                let d = self.scratch();
                let s = self.flt();
                fb.ftoi(d, s);
            }
            6 => {
                // Division by zero yields inf/NaN; both propagate
                // deterministically and are compared as bit patterns.
                let (d, a, b) = (self.flt(), self.flt(), self.flt());
                fb.fdiv(d, a, b);
            }
            _ => {
                let (d, a) = (self.flt(), self.flt());
                fb.fsqrt(d, a);
            }
        }
    }

    fn setcond(&mut self) -> SetCond {
        let conds = [
            SetCond::Eq,
            SetCond::Ne,
            SetCond::Lt,
            SetCond::Le,
            SetCond::Gt,
            SetCond::Ge,
        ];
        conds[self.rng.gen_range(0..conds.len())]
    }

    fn small_imm(&mut self) -> i64 {
        self.rng.gen_range(-16..16i64)
    }

    /// A batch of `stmts` statements with a noise stir mixed in.
    fn stmt_batch(&mut self, fb: &mut FuncBuilder) {
        let n = self.rng.gen_range(1..=self.params.stmts.max(1));
        for _ in 0..n {
            self.stmt(fb);
        }
        self.stir(fb);
    }

    /// Emit a conditional branch to `target` with a data-dependent outcome.
    /// `loop_nest > 0` enables counter-phase conditions.
    fn cond_branch(&mut self, fb: &mut FuncBuilder, target: &str, loop_nest: u8) {
        let likely = self.rng.gen_bool(0.25);
        match self.rng.gen_range(0..6u8) {
            0 => {
                // Low bit of the noise register.
                fb.andi(r(ADDR), r(NOISE), self.rng.gen_range(1..8i64));
                if likely {
                    fb.bnel(r(ADDR), r(0), target);
                } else {
                    fb.bne(r(ADDR), r(0), target);
                }
            }
            1 if loop_nest > 0 => {
                // Phase of the innermost loop counter.
                let c = r(COUNTER_BASE + loop_nest - 1);
                let k = self
                    .rng
                    .gen_range(1..i64::from(self.params.max_trip.max(2)));
                fb.slti(r(ADDR), c, k);
                if likely {
                    fb.beql(r(ADDR), r(0), target);
                } else {
                    fb.beq(r(ADDR), r(0), target);
                }
            }
            2 => {
                // Predicate branch.
                let pr = self.pred();
                fb.setpi(self.setcond(), pr, self.source(), self.small_imm());
                match (self.rng.gen_bool(0.5), likely) {
                    (true, false) => fb.bpt(pr, target),
                    (true, true) => fb.bptl(pr, target),
                    (false, false) => fb.bpf(pr, target),
                    (false, true) => fb.bpfl(pr, target),
                };
            }
            3 => {
                // Sign tests on a scratch value.
                let a = self.scratch();
                match (self.rng.gen_range(0..4u8), likely) {
                    (0, false) => fb.blez(a, target),
                    (0, true) => fb.blezl(a, target),
                    (1, false) => fb.bgtz(a, target),
                    (1, true) => fb.bgtzl(a, target),
                    (2, false) => fb.bltz(a, target),
                    (2, true) => fb.bltzl(a, target),
                    (_, false) => fb.bgez(a, target),
                    (_, true) => fb.bgezl(a, target),
                };
            }
            4 => {
                // Register compare.
                let (a, b) = (self.source(), self.source());
                if likely {
                    fb.beql(a, b, target);
                } else {
                    fb.beq(a, b, target);
                }
            }
            _ => {
                // Strongly biased: almost never taken (exercises the
                // likely/if-convert classifiers' monotone paths).
                fb.slti(r(ADDR), r(0), 1); // always 1
                if likely {
                    fb.beql(r(ADDR), r(0), target);
                } else {
                    fb.beq(r(ADDR), r(0), target);
                }
            }
        }
    }

    /// Close an arm: usually fall/jump to `join`, sometimes cross-jump to an
    /// enclosing join (breaking the hammock shape).
    fn close_arm(&mut self, fb: &mut FuncBuilder, join: &str) {
        if self.params.cross_jumps && !self.pending_joins.is_empty() && self.rng.gen_bool(0.2) {
            let i = self.rng.gen_range(0..self.pending_joins.len());
            let target = self.pending_joins[i].clone();
            fb.jump(&target);
        } else {
            fb.jump(join);
        }
    }

    /// Emit one region. `depth` limits further nesting, `loop_nest` counts
    /// enclosing loops (for counter-register assignment).
    fn region(&mut self, fb: &mut FuncBuilder, depth: u8, loop_nest: u8) {
        let kind_max = if depth == 0 { 1 } else { 10 };
        match self.rng.gen_range(0..kind_max) {
            0 => self.stmt_batch(fb),
            1..=3 => self.diamond(fb, depth, loop_nest),
            4..=5 => self.triangle(fb, depth, loop_nest),
            6..=8 if loop_nest < MAX_LOOP_NEST => self.bounded_loop(fb, depth, loop_nest),
            _ => self.switch(fb, depth, loop_nest),
        }
        // Occasionally call a leaf helper after the region.
        if !self.helper_names.is_empty() && self.rng.gen_bool(0.15) {
            let i = self.rng.gen_range(0..self.helper_names.len());
            let name = self.helper_names[i].clone();
            fb.call(&name);
        }
    }

    fn diamond(&mut self, fb: &mut FuncBuilder, depth: u8, loop_nest: u8) {
        let then_l = self.label("then");
        let else_l = self.label("else");
        let join_l = self.label("join");
        self.cond_branch(fb, &else_l, loop_nest);
        // then-arm (fall through)
        fb.block(&then_l);
        self.pending_joins.push(join_l.clone());
        self.arm(fb, depth, loop_nest);
        self.pending_joins.pop();
        self.close_arm(fb, &join_l);
        fb.block(&else_l);
        self.pending_joins.push(join_l.clone());
        self.arm(fb, depth, loop_nest);
        self.pending_joins.pop();
        fb.block(&join_l);
    }

    /// Triangle: branch either skips the arm (TriangleFall) or jumps to it
    /// (TriangleTaken-like, via an inverted layout).
    fn triangle(&mut self, fb: &mut FuncBuilder, depth: u8, loop_nest: u8) {
        let arm_l = self.label("tarm");
        let join_l = self.label("tjoin");
        self.cond_branch(fb, &join_l, loop_nest);
        fb.block(&arm_l);
        self.pending_joins.push(join_l.clone());
        self.arm(fb, depth, loop_nest);
        self.pending_joins.pop();
        fb.block(&join_l);
    }

    /// Arm body: statements, possibly a nested region.
    fn arm(&mut self, fb: &mut FuncBuilder, depth: u8, loop_nest: u8) {
        self.stmt_batch(fb);
        if depth > 0 && self.rng.gen_bool(0.5) {
            self.region(fb, depth - 1, loop_nest);
        }
    }

    fn bounded_loop(&mut self, fb: &mut FuncBuilder, depth: u8, loop_nest: u8) {
        let head_l = self.label("head");
        let break_l = self.label("brk");
        let c = r(COUNTER_BASE + loop_nest);
        let trip = self
            .rng
            .gen_range(2..=i64::from(self.params.max_trip.max(2)));
        fb.li(c, trip);
        fb.block(&head_l);
        // Body.
        self.pending_joins.push(break_l.clone());
        if depth > 0 && self.rng.gen_bool(0.6) {
            self.region(fb, depth - 1, loop_nest + 1);
        } else {
            self.stmt_batch(fb);
        }
        // Optional early exit (multi-exit loop).
        if self.rng.gen_bool(0.4) {
            self.cond_branch(fb, &break_l, loop_nest + 1);
            // Blocks must end at control; continue in a fresh block.
            let cont = self.label("cont");
            fb.block(&cont);
        }
        self.pending_joins.pop();
        // Backedge.
        fb.subi(c, c, 1);
        if self.rng.gen_bool(0.3) {
            fb.bne(c, r(0), &head_l);
        } else {
            fb.bgtz(c, &head_l);
        }
        fb.block(&break_l);
    }

    fn switch(&mut self, fb: &mut FuncBuilder, depth: u8, loop_nest: u8) {
        let n = if self.rng.gen_bool(0.5) { 2usize } else { 4 };
        let join_l = self.label("sjoin");
        let cases: Vec<String> = (0..n).map(|_| self.label("case")).collect();
        fb.andi(r(ADDR), r(NOISE), n as i64 - 1);
        let refs: Vec<&str> = cases.iter().map(|s| s.as_str()).collect();
        fb.jtab(r(ADDR), &refs);
        for (i, c) in cases.iter().enumerate() {
            fb.block(c);
            self.pending_joins.push(join_l.clone());
            if depth > 0 && self.rng.gen_bool(0.3) {
                self.region(fb, depth - 1, loop_nest);
            } else {
                self.stmt_batch(fb);
            }
            self.pending_joins.pop();
            if i + 1 < n {
                self.close_arm(fb, &join_l);
            }
            // Last case falls through to the join.
        }
        fb.block(&join_l);
    }

    /// A leaf helper: straight-line / diamond body over scratch registers,
    /// no loops, no calls.  Clobbers scratch like any callee here would.
    fn helper(&mut self, name: &str) -> FuncBuilder {
        let mut fb = FuncBuilder::new(name);
        fb.block("entry");
        self.stmt_batch(&mut fb);
        if self.rng.gen_bool(0.6) {
            let arm = self.label("harm");
            let join = self.label("hjoin");
            self.cond_branch(&mut fb, &join, 0);
            fb.block(&arm);
            self.stmt_batch(&mut fb);
            fb.block(&join);
        }
        self.stmt_batch(&mut fb);
        fb.ret();
        fb
    }
}

/// Emit the body of `main`: the top-level regions, wrapped in the outer
/// repeat loop (its counter r24 is disjoint from the nested-loop counters
/// r20..r22, so every loop stays independently bounded).  Called twice per
/// program — once as a dry run to learn which registers the body touches,
/// once for real — so it must be a pure function of the `Gen` state.
fn emit_body(g: &mut Gen, fb: &mut FuncBuilder) {
    let params = g.params;
    let repeat = i64::from(params.repeat.max(1));
    if repeat > 1 {
        fb.li(r(REPEAT), repeat);
        fb.block("rep");
    }
    for _ in 0..params.regions.max(1) {
        g.region(fb, params.depth, 0);
    }
    if repeat > 1 {
        fb.subi(r(REPEAT), r(REPEAT), 1);
        fb.bgtz(r(REPEAT), "rep");
    }
}

/// Generate a program from a parameter point and a data seed.  Deterministic:
/// equal inputs produce identical programs.
pub fn generate(params: &ShapeParams, seed: u64) -> Program {
    let mem = params.mem_pow2();
    let mask = (mem / 2 - 1) as i64;
    let max_off = (mem / 2) as i64;
    let mut g = Gen {
        rng: SmallRng::seed_from_u64(seed),
        params: *params,
        next_label: 0,
        pending_joins: Vec::new(),
        helper_names: Vec::new(),
        mask,
        max_off,
    };

    let mut pb = ProgramBuilder::new();
    pb.mem_words(mem);
    // Preload a few data words so first loads see varied values.
    for a in 0..(mem / 4).min(16) {
        let v = g.rng.gen_range(-5000..5000i64);
        pb.data_word(a, v);
    }

    // Helpers first (so main can call them by name).  Keep a copy of their
    // instructions for the epilogue's written-register scan below.
    let mut helper_insns = Vec::new();
    for i in 0..params.helpers.min(3) {
        let name = format!("leaf{i}");
        let fb = g.helper(&name);
        helper_insns.extend(fb.insns().cloned());
        g.helper_names.push(name);
        pb.add_func(fb);
    }

    // Dry-run the body with a *cloned* RNG to learn which registers it (and
    // the helpers, which share the register file) will touch, so the
    // prologue can seed exactly those.  The real pass below replays the
    // same RNG stream, so both passes emit identical bodies.
    let body_rng = g.rng.clone();
    let body_labels = g.next_label;
    let mut dry = FuncBuilder::new("dry");
    emit_body(&mut g, &mut dry);
    let (mut int_used, mut flt_used) = (0u64, 0u64);
    for i in dry.insns().chain(helper_insns.iter()) {
        for u in i.uses() {
            match u {
                Reg::Int(x) => int_used |= 1 << x.0,
                Reg::Flt(x) => flt_used |= 1 << x.0,
                _ => {}
            }
        }
    }
    g.rng = body_rng;
    g.next_label = body_labels;
    g.pending_joins.clear();

    // The fp prologue feeds f1/f2 from r1/r2, so those count as read.
    let fp_init = params.fp && flt_used != 0;
    if fp_init {
        int_used |= 0b110;
    }

    let mut fb = FuncBuilder::new("main");
    fb.block("entry");
    // Prologue: seed the working registers the body reads from immediates
    // and memory.  Draws come from a separate RNG stream so the init-set
    // size cannot perturb the body's stream (which must match the dry run).
    let mut prng = SmallRng::seed_from_u64(seed ^ 0x7072_6f6c_6f67_7565);
    for a in *ACCUM.start()..=*ACCUM.end() {
        if int_used & (1 << a) != 0 {
            fb.li(r(a), prng.gen_range(-100..100i64));
        }
    }
    if int_used & (1 << NOISE) != 0 {
        fb.li(r(NOISE), prng.gen_range(1..1i64 << 20) | 1);
    }
    for s in 1..=4u8 {
        if int_used & (1 << s) == 0 {
            continue;
        }
        if prng.gen_bool(0.7) {
            fb.lw(r(s), r(0), prng.gen_range(0..(mem / 4).min(16)) as i64);
        } else {
            fb.li(r(s), prng.gen_range(-64..64i64));
        }
    }
    if fp_init {
        for i in 1..=2u8 {
            fb.itof(f(i), r(i));
        }
    }

    emit_body(&mut g, &mut fb);

    // Epilogue: spill every observable register the program (including its
    // helpers, which share the register file) actually wrote, at fixed
    // addresses, then halt.  Spilling only written registers keeps shrunk
    // cases small; unwritten registers cannot diverge.
    let (mut int_written, mut flt_written) = (0u64, 0u64);
    for i in fb.insns().chain(helper_insns.iter()) {
        match i.def() {
            Some(Reg::Int(d)) => int_written |= 1 << d.0,
            Some(Reg::Flt(d)) => flt_written |= 1 << d.0,
            _ => {}
        }
    }
    fb.block("out");
    let mut addr = 0i64;
    for a in (*ACCUM.start()..=*ACCUM.end())
        .chain([NOISE])
        .chain(*SCRATCH.start()..=*SCRATCH.end())
    {
        if int_written & (1 << a) != 0 {
            fb.sw(r(a), r(0), addr);
            addr += 1;
        }
    }
    if params.fp {
        for i in 1..=6u8 {
            if flt_written & (1 << i) != 0 {
                fb.fsw(f(i), r(0), addr);
                addr += 1;
            }
        }
    }
    fb.halt();
    pb.add_func(fb);
    pb.finish("main")
}

/// Static instruction count (for shrink reporting and corpus size limits).
pub fn static_len(prog: &Program) -> usize {
    prog.funcs
        .iter()
        .map(|f| f.blocks.iter().map(|b| b.insns.len()).sum::<usize>())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::validate::validate;

    #[test]
    fn generation_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..20 {
            let params = ShapeParams::sample(&mut rng);
            let seed = rng.gen_range(0..u64::MAX);
            let a = generate(&params, seed);
            let b = generate(&params, seed);
            assert_eq!(a.to_string(), b.to_string());
        }
    }

    #[test]
    fn minimal_params_generate_small_valid_programs() {
        for seed in 0..50u64 {
            let prog = generate(&ShapeParams::minimal(), seed);
            assert!(validate(&prog).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn sampled_shapes_are_valid_and_terminate() {
        let mut rng = SmallRng::seed_from_u64(7);
        for i in 0..100 {
            let params = ShapeParams::sample(&mut rng);
            let seed = rng.gen_range(0..u64::MAX);
            let prog = generate(&params, seed);
            let errs = validate(&prog);
            assert!(errs.is_empty(), "case {i} params {params:?}: {errs:?}");
            let res = guardspec_interp::Interp::new(&prog)
                .with_fuel(2_000_000)
                .run_with(&mut ())
                .unwrap_or_else(|e| panic!("case {i} params {params:?} seed {seed}: {e}"));
            assert!(res.summary.retired > 0);
        }
    }
}
