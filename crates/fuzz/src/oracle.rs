//! The differential oracle: one definition of "same behavior".
//!
//! For a generated program `P` and a transform configuration `O`, the oracle
//! checks two independent things:
//!
//! 1. **Transform equivalence** — `transform_program(P, profile, O)` must
//!    preserve *observable* behavior: the final memory image and the
//!    committed-store trace (address/value pairs in commit order).  Register
//!    files are deliberately *not* compared across a transform: speculation
//!    hoists an instruction without renaming when its destination is dead on
//!    the other path, so dead registers legitimately end up with different
//!    values (see `Machine::mem_checksum`).  The generator spills every
//!    meaningful register to memory in its epilogue, so anything that matters
//!    is covered by the memory/store comparison.
//! 2. **Engine agreement** — for a *single* program, the plain interpreter,
//!    the trace recorder + materialized simulation, and the streaming
//!    interpreter + simulation must agree exactly: full architectural state
//!    (int/flt/pred registers and memory) and identical `SimStats`.  The
//!    compiled decoded-uop engine is held to the same bar against the
//!    interpreted pipeline: identical `SimStats`, identical cycle-bucket
//!    accounting (`CycleAccounting` equality, which covers per-site
//!    counters too), and a committed-store trace consistent with the
//!    interpreter's, over both the materialized and the streamed source.
//!
//! Transform panics and validation failures on the transformed program are
//! reported as findings rather than crashing the fuzz run; an original
//! program that traps or fails validation is a *generator* bug and panics
//! loudly.

use crate::gen::{generate, ShapeParams};
use guardspec_core::{transform_program, DriverOptions};
use guardspec_interp::exec::{ExecError, Interp, Observer, RetireEvent};
use guardspec_interp::profile::profile_program;
use guardspec_interp::Machine;
use guardspec_ir::reg::{f, p, r};
use guardspec_ir::validate::validate;
use guardspec_ir::{Instruction, Opcode, Program};
use guardspec_predict::Scheme;
use guardspec_sim::{
    simulate_compiled_trace_observed_in, simulate_program_compiled_streamed_observed_in,
    simulate_program_streamed, simulate_trace_observed, CompiledProgram, CycleAccounting,
    MachineConfig, SimContext,
};
use rand::prelude::*;

/// Interpreter fuel for generated programs: far above any shape the
/// generator can produce, small enough that a runaway loop fails fast.
pub const CASE_FUEL: u64 = 4_000_000;

/// Observer collecting the committed-store trace.
#[derive(Default)]
pub struct StoreTrace {
    /// `(word address, stored value)` in commit order; float stores appear
    /// as their IEEE bit pattern.
    pub stores: Vec<(i64, i64)>,
}

impl Observer for StoreTrace {
    fn on_retire(&mut self, _insn: &Instruction, ev: &RetireEvent) {
        if let (Some(a), Some(v)) = (ev.mem_addr, ev.store_value) {
            debug_assert!(!ev.annulled);
            self.stores.push((a, v));
        }
    }
}

/// Everything the equivalence check observes about one execution.
pub struct Behavior {
    pub mem: Vec<i64>,
    pub stores: Vec<(i64, i64)>,
    pub retired: u64,
    pub machine: Machine,
}

/// Run `prog` under the interpreter, collecting the committed-store trace.
pub fn behavior_of(prog: &Program) -> Result<Behavior, ExecError> {
    let mut st = StoreTrace::default();
    let res = Interp::new(prog).with_fuel(CASE_FUEL).run_with(&mut st)?;
    Ok(Behavior {
        mem: res.machine.mem.clone(),
        stores: st.stores,
        retired: res.summary.retired,
        machine: res.machine,
    })
}

/// Compare observable behavior of an original and a transformed program.
/// This is *the* definition of "same behavior" shared by the fuzzer and the
/// transform-semantics tests: final memory image + committed-store trace.
pub fn check_equivalence(orig: &Behavior, xf: &Behavior) -> Result<(), String> {
    if orig.mem != xf.mem {
        let i = orig
            .mem
            .iter()
            .zip(&xf.mem)
            .position(|(a, b)| a != b)
            .map(|i| i.to_string())
            .unwrap_or_else(|| "length".into());
        return Err(format!(
            "final memory differs (first mismatch at word {i}): orig {} words, transformed {} words",
            orig.mem.len(),
            xf.mem.len()
        ));
    }
    if orig.stores != xf.stores {
        let i = orig.stores.iter().zip(&xf.stores).position(|(a, b)| a != b);
        return Err(match i {
            Some(i) => format!(
                "committed-store trace differs at store #{i}: orig {:?}, transformed {:?} \
                 ({} vs {} stores)",
                orig.stores[i],
                xf.stores[i],
                orig.stores.len(),
                xf.stores.len()
            ),
            None => format!(
                "committed-store trace length differs: {} vs {} stores",
                orig.stores.len(),
                xf.stores.len()
            ),
        });
    }
    Ok(())
}

/// Full architectural-state comparison: only valid between engines running
/// the *same* program.
fn check_same_program_state(tag: &str, a: &Machine, b: &Machine) -> Result<(), String> {
    if a.mem != b.mem {
        return Err(format!("{tag}: memory images differ"));
    }
    for i in 0..guardspec_ir::reg::NUM_INT_REGS {
        if a.get_int(r(i)) != b.get_int(r(i)) {
            return Err(format!(
                "{tag}: int register r{i} differs: {} vs {}",
                a.get_int(r(i)),
                b.get_int(r(i))
            ));
        }
    }
    for i in 0..guardspec_ir::reg::NUM_FLT_REGS {
        if a.get_flt(f(i)).to_bits() != b.get_flt(f(i)).to_bits() {
            return Err(format!("{tag}: float register f{i} differs"));
        }
    }
    for i in 0..guardspec_ir::reg::NUM_PRED_REGS {
        if a.get_pred(p(i)) != b.get_pred(p(i)) {
            return Err(format!("{tag}: predicate register p{i} differs"));
        }
    }
    Ok(())
}

/// The transform configurations every case is checked under: the five named
/// presets plus `extra_mixes` randomized option mixes drawn from `rng`.
pub fn variants(rng: &mut SmallRng, extra_mixes: usize) -> Vec<(String, DriverOptions)> {
    let mut v: Vec<(String, DriverOptions)> = [
        ("baseline", DriverOptions::baseline()),
        ("conventional", DriverOptions::conventional()),
        ("speculation_only", DriverOptions::speculation_only()),
        ("guarded_only", DriverOptions::guarded_only()),
        ("proposed", DriverOptions::proposed()),
    ]
    .into_iter()
    .map(|(n, o)| (n.to_string(), o))
    .collect();
    for i in 0..extra_mixes {
        let mut o = DriverOptions::proposed();
        o.enable_likely = rng.gen_bool(0.5);
        o.enable_ifconvert = rng.gen_bool(0.5);
        o.enable_split = rng.gen_bool(0.5);
        o.enable_speculation = rng.gen_bool(0.5);
        o.max_arm_len = rng.gen_range(1..=8usize);
        o.max_speculate_ops = rng.gen_range(1..=6usize);
        o.allow_speculative_loads = rng.gen_bool(0.5);
        o.max_likelies_per_site = rng.gen_range(1..=4usize);
        o.feedback.likely_threshold = rng.gen_range(0.7..0.99f64);
        o.feedback.convert_threshold = rng.gen_range(0.5..0.9f64);
        v.push((format!("mix{i}"), o));
    }
    v
}

/// One divergence found by the oracle.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which transform configuration exposed it (or `engines` for an
    /// engine-agreement failure on an untransformed program).
    pub variant: String,
    pub detail: String,
}

/// Outcome of one fuzz case.
#[derive(Clone, Debug)]
pub struct CaseResult {
    pub params: ShapeParams,
    pub seed: u64,
    pub retired: u64,
    pub findings: Vec<Finding>,
}

impl CaseResult {
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }
}

fn transform_guarded(
    prog: &Program,
    profile: &guardspec_interp::Profile,
    opts: &DriverOptions,
) -> Result<Program, String> {
    let mut p2 = prog.clone();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        transform_program(&mut p2, profile, opts);
    }));
    match r {
        Ok(()) => Ok(p2),
        Err(e) => {
            let msg = e
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| e.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            Err(format!("transform panicked: {msg}"))
        }
    }
}

/// Check the execution engines against each other on one program: the
/// interpreted pipeline (materialized and streamed) and the compiled
/// decoded-uop engine (materialized and streamed) must produce identical
/// `SimStats` and identical cycle accounting, and the trace the compiled
/// engine consumes must carry exactly the interpreter's committed stores.
fn check_engines(tag: &str, prog: &Program, reference: &Behavior) -> Result<(), String> {
    let cfg = MachineConfig::r10000();
    // Materialized interpreted path.
    let (layout, trace, exec) = guardspec_interp::trace::trace_program(prog)
        .map_err(|e| format!("{tag}: trace_program failed: {e}"))?;
    check_same_program_state(
        &format!("{tag}: interp vs trace_program"),
        &reference.machine,
        &exec.machine,
    )?;
    let mut acct_interp = CycleAccounting::new();
    let stats_mat = simulate_trace_observed(
        prog,
        &layout,
        &trace,
        Scheme::TwoBit,
        &cfg,
        &mut acct_interp,
    )
    .map_err(|e| format!("{tag}: simulate_trace failed: {e}"))?;
    // Streaming interpreted path.
    let (stats_str, exec_str) = simulate_program_streamed(prog, Scheme::TwoBit, &cfg)
        .map_err(|e| format!("{tag}: simulate_program_streamed failed: {e}"))?;
    check_same_program_state(
        &format!("{tag}: interp vs streamed interp"),
        &reference.machine,
        &exec_str.machine,
    )?;
    if stats_mat != stats_str {
        return Err(format!(
            "{tag}: SimStats diverge between materialized and streamed simulation \
             (cycles {} vs {}, committed {} vs {})",
            stats_mat.cycles, stats_str.cycles, stats_mat.committed, stats_str.committed
        ));
    }

    // The committed-store trace the simulators consume must be exactly the
    // interpreter's: every non-annulled store entry, same addresses, same
    // commit order.  (Values are not in the trace; they are covered by the
    // memory-image comparisons above.)
    let trace_stores: Vec<u32> = trace
        .iter()
        .filter(|e| !e.annulled())
        .filter(|e| {
            matches!(
                prog.insn(layout.site(e.id)).op,
                Opcode::Store { .. } | Opcode::FStore { .. }
            )
        })
        .filter_map(|e| e.mem_addr())
        .collect();
    let ref_stores: Vec<u32> = reference.stores.iter().map(|&(a, _)| a as u32).collect();
    if trace_stores != ref_stores {
        let i = trace_stores
            .iter()
            .zip(&ref_stores)
            .position(|(a, b)| a != b)
            .map(|i| i.to_string())
            .unwrap_or_else(|| "length".into());
        return Err(format!(
            "{tag}: committed-store trace differs between interpreter and recorded trace \
             (first mismatch at store #{i}; {} vs {} stores)",
            trace_stores.len(),
            ref_stores.len()
        ));
    }

    // Compiled engine, materialized path: byte-identical stats and cycle
    // accounting to the interpreted pipeline over the same trace.
    let comp = CompiledProgram::build(prog);
    let mut ctx = SimContext::new(&cfg);
    let mut acct_comp = CycleAccounting::new();
    let stats_comp = simulate_compiled_trace_observed_in(
        &mut ctx,
        &comp,
        &trace,
        Scheme::TwoBit,
        &cfg,
        &mut acct_comp,
    )
    .map_err(|e| format!("{tag}: compiled simulate failed: {e}"))?;
    if stats_comp != stats_mat {
        return Err(format!(
            "{tag}: SimStats diverge between interpreted and compiled engines \
             (cycles {} vs {}, committed {} vs {})",
            stats_mat.cycles, stats_comp.cycles, stats_mat.committed, stats_comp.committed
        ));
    }
    if acct_comp != acct_interp {
        let bucket = acct_interp
            .buckets()
            .iter()
            .zip(acct_comp.buckets())
            .position(|(a, b)| a != b);
        return Err(format!(
            "{tag}: cycle accounting diverges between interpreted and compiled engines \
             (first differing bucket index: {bucket:?}; per-site counters {})",
            if acct_interp.nonzero_sites().eq(acct_comp.nonzero_sites()) {
                "agree"
            } else {
                "differ"
            }
        ));
    }

    // Compiled engine, streamed path: same stats again, and the embedded
    // interpreter must land in the same architectural state.
    let (stats_comp_str, exec_comp) = simulate_program_compiled_streamed_observed_in(
        &mut ctx,
        prog,
        &comp,
        Scheme::TwoBit,
        &cfg,
        &mut (),
    )
    .map_err(|e| format!("{tag}: compiled streamed simulate failed: {e}"))?;
    check_same_program_state(
        &format!("{tag}: interp vs compiled streamed interp"),
        &reference.machine,
        &exec_comp.machine,
    )?;
    if stats_comp_str != stats_mat {
        return Err(format!(
            "{tag}: SimStats diverge between materialized and streamed compiled runs \
             (cycles {} vs {})",
            stats_mat.cycles, stats_comp_str.cycles
        ));
    }
    Ok(())
}

/// How much work `run_case` does beyond the transform-equivalence core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Thoroughness {
    /// Interpreter-level equivalence for every variant only.
    Quick,
    /// Also cross-check the simulation engines on the original program and
    /// on the `proposed` transform.
    Full,
}

/// Run the full oracle on one `(params, seed)` point.
pub fn run_case(params: &ShapeParams, seed: u64, thoroughness: Thoroughness) -> CaseResult {
    let prog = generate(params, seed);

    // Generator bugs are not findings; fail loudly.
    let errs = validate(&prog);
    assert!(
        errs.is_empty(),
        "generator emitted invalid program (params {params:?} seed {seed}): {errs:?}"
    );
    let orig = behavior_of(&prog)
        .unwrap_or_else(|e| panic!("generated program traps (params {params:?} seed {seed}): {e}"));

    let mut findings = Vec::new();
    let (profile, _) = match profile_program(&prog) {
        Ok(x) => x,
        Err(e) => panic!("profiling trapped on a program that ran clean: {e}"),
    };

    // Option-mix RNG is derived from the case seed, so a case is fully
    // reproducible from (params, seed) alone.
    let mut mix_rng = SmallRng::seed_from_u64(seed ^ 0x6f72_6163_6c65); // "oracle"
    for (name, opts) in variants(&mut mix_rng, 2) {
        let p2 = match transform_guarded(&prog, &profile, &opts) {
            Ok(p2) => p2,
            Err(detail) => {
                findings.push(Finding {
                    variant: name,
                    detail,
                });
                continue;
            }
        };
        let verrs = validate(&p2);
        if !verrs.is_empty() {
            findings.push(Finding {
                variant: name,
                detail: format!("transformed program fails validation: {verrs:?}"),
            });
            continue;
        }
        let xf = match behavior_of(&p2) {
            Ok(b) => b,
            Err(e) => {
                findings.push(Finding {
                    variant: name,
                    detail: format!("transformed program traps: {e}"),
                });
                continue;
            }
        };
        if let Err(detail) = check_equivalence(&orig, &xf) {
            findings.push(Finding {
                variant: name,
                detail,
            });
            continue;
        }
        if thoroughness == Thoroughness::Full && name == "proposed" {
            if let Err(detail) = check_engines("proposed", &p2, &xf) {
                findings.push(Finding {
                    variant: name,
                    detail,
                });
            }
        }
    }

    if thoroughness == Thoroughness::Full {
        if let Err(detail) = check_engines("original", &prog, &orig) {
            findings.push(Finding {
                variant: "engines".into(),
                detail,
            });
        }
    }

    CaseResult {
        params: *params,
        seed,
        retired: orig.retired,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_trace_observer_matches_memory_writes() {
        let params = ShapeParams {
            regions: 2,
            ..ShapeParams::minimal()
        };
        let prog = generate(&params, 3);
        let b = behavior_of(&prog).expect("runs");
        // Replaying the store trace onto a fresh image reproduces every cell
        // the program wrote (untouched cells come from the data preload).
        let mut replay = Machine::for_program(&prog).mem;
        for (a, v) in &b.stores {
            replay[*a as usize] = *v;
        }
        assert_eq!(replay, b.mem);
    }

    #[test]
    fn identity_equivalence_holds() {
        let prog = generate(&ShapeParams::minimal(), 11);
        let a = behavior_of(&prog).unwrap();
        let b = behavior_of(&prog).unwrap();
        check_equivalence(&a, &b).unwrap();
    }

    #[test]
    fn quick_case_runs_clean_on_a_few_seeds() {
        let mut rng = SmallRng::seed_from_u64(1234);
        for _ in 0..10 {
            let params = ShapeParams::sample(&mut rng);
            let seed = rng.gen_range(0..u64::MAX);
            let res = run_case(&params, seed, Thoroughness::Quick);
            assert!(
                res.ok(),
                "divergence at params {:?} seed {}: {:?}",
                res.params,
                res.seed,
                res.findings
            );
        }
    }
}
