//! Shrinking: minimize a failing `(ShapeParams, seed)` pair.
//!
//! Coordinate descent over the parameter point: for each field in turn, try
//! its minimum first, then successively smaller steps toward the current
//! value, accepting any candidate that still diverges.  Booleans are tried
//! off.  After the parameter point reaches a fixpoint, a small set of tiny
//! seeds is tried so replayable cases carry the smallest seed that still
//! fails.  Every probe re-runs the full oracle, so a shrunk case fails for
//! the same *kind* of reason (any variant divergence), which is the standard
//! property-testing trade-off: the shrunk case may expose a different bug
//! than the original, but it always exposes *a* bug.

use crate::gen::{generate, static_len, ShapeParams};
use crate::oracle::{run_case, CaseResult, Thoroughness};

/// Probe budget: generous for coordinate descent on nine fields, bounded so
/// shrinking a pathological case cannot hang a fuzz run.
const MAX_PROBES: usize = 400;

struct Shrinker {
    probes: usize,
    thoroughness: Thoroughness,
}

impl Shrinker {
    /// Does `(params, seed)` still fail?  Returns the failing result.
    fn probe(&mut self, params: &ShapeParams, seed: u64) -> Option<CaseResult> {
        if self.probes >= MAX_PROBES {
            return None;
        }
        self.probes += 1;
        let res = run_case(params, seed, self.thoroughness);
        (!res.ok()).then_some(res)
    }
}

/// Candidate values for one numeric field: the minimum, then midpoints
/// walking back up toward (but below) `cur`.
fn descend(min: u64, cur: u64) -> Vec<u64> {
    let mut v = Vec::new();
    if cur > min {
        v.push(min);
        let mut lo = min;
        let hi = cur;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if mid != min && mid != cur && !v.contains(&mid) {
                v.push(mid);
            }
            lo = mid;
        }
        if cur - 1 > min && !v.contains(&(cur - 1)) {
            v.push(cur - 1);
        }
    }
    v
}

/// Shrink a failing pair; returns the smallest still-failing `(params, seed)`
/// with its oracle result.  `start` must fail (checked).
pub fn shrink(
    start_params: &ShapeParams,
    start_seed: u64,
    thoroughness: Thoroughness,
) -> (ShapeParams, u64, CaseResult) {
    let mut sh = Shrinker {
        probes: 0,
        thoroughness,
    };
    let mut best = sh
        .probe(start_params, start_seed)
        .expect("shrink() called on a passing case");
    let mut params = *start_params;
    let mut seed = start_seed;

    // Field accessors: (getter, setter, minimum).
    type Get = fn(&ShapeParams) -> u64;
    type Set = fn(&mut ShapeParams, u64);
    let fields: [(Get, Set, u64); 7] = [
        (|p| p.depth as u64, |p, v| p.depth = v as u8, 0),
        (|p| p.stmts as u64, |p, v| p.stmts = v as u8, 1),
        (|p| p.regions as u64, |p, v| p.regions = v as u8, 1),
        (|p| p.max_trip as u64, |p, v| p.max_trip = v as u8, 2),
        (|p| p.mem_words as u64, |p, v| p.mem_words = v as u16, 16),
        (|p| p.repeat as u64, |p, v| p.repeat = v as u8, 1),
        (|p| p.helpers as u64, |p, v| p.helpers = v as u8, 0),
    ];
    type GetB = fn(&ShapeParams) -> bool;
    type SetB = fn(&mut ShapeParams, bool);
    let bools: [(GetB, SetB); 4] = [
        (|p| p.fpdiv, |p, v| p.fpdiv = v),
        (|p| p.fp, |p, v| p.fp = v),
        (|p| p.cross_jumps, |p, v| p.cross_jumps = v),
        (|p| p.guards, |p, v| p.guards = v),
    ];

    loop {
        let before = params;
        for (get, set, min) in fields {
            for cand in descend(min, get(&params)) {
                let mut t = params;
                set(&mut t, cand);
                if let Some(res) = sh.probe(&t, seed) {
                    params = t;
                    best = res;
                    break; // restart this field from the new smaller value
                }
            }
        }
        for (get, set) in bools {
            if get(&params) {
                let mut t = params;
                set(&mut t, false);
                if let Some(res) = sh.probe(&t, seed) {
                    params = t;
                    best = res;
                }
            }
        }
        if params == before || sh.probes >= MAX_PROBES {
            break;
        }
    }

    // Seed descent: prefer a tiny seed if one still fails at this point.
    if seed > 31 {
        for cand in 0..32u64 {
            if let Some(res) = sh.probe(&params, cand) {
                seed = cand;
                best = res;
                break;
            }
        }
    }

    (params, seed, best)
}

/// Static size of the program a shrunk pair generates (corpus size check).
pub fn shrunk_len(params: &ShapeParams, seed: u64) -> usize {
    static_len(&generate(params, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descend_walks_from_min_upward() {
        assert_eq!(descend(0, 0), Vec::<u64>::new());
        assert_eq!(descend(1, 2), vec![1]);
        let d = descend(2, 7);
        assert_eq!(d[0], 2);
        assert!(d.iter().all(|&v| (2..7).contains(&v)));
        // strictly increasing after the minimum probe
        assert!(d.windows(2).all(|w| w[0] < w[1]));
    }
}
