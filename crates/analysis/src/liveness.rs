//! Per-block liveness analysis.
//!
//! Classic backward may-analysis over [`RegSet`]s.  Guarded instructions are
//! treated conservatively: a guarded def is *not* a kill (the old value
//! survives when the guard is false) but still counts as a def for def-use
//! queries.  This is exactly the conservatism Section 3 describes: "a clear
//! demarcation of the different live ranges ... can be [a] complicated task
//! especially now that the register lifetimes are conditional.  Most
//! conservative assumptions need to be made unless a full-blown predicate
//! analyzer is available."

use crate::cfg::Cfg;
use crate::regset::RegSet;
use guardspec_ir::{BlockId, Function, Opcode, Reg};

/// Liveness facts for one function.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
    /// Upward-exposed uses per block.
    gen: Vec<RegSet>,
    /// Unconditional kills per block.
    kill: Vec<RegSet>,
}

impl Liveness {
    /// Compute liveness for `f`.  Memory is not tracked (stores/loads only
    /// use their address and data registers).
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        let n = f.num_blocks();
        let mut gen = vec![RegSet::new(); n];
        let mut kill = vec![RegSet::new(); n];
        for (id, b) in f.iter_blocks() {
            let (g, k) = (&mut gen[id.index()], &mut kill[id.index()]);
            for insn in &b.insns {
                // A call transfers control to a callee operating on the SAME
                // architectural register file, so it may read any register:
                // everything not yet killed in this block is upward-exposed.
                // (Callee writes are possible but not guaranteed — no kill.)
                if matches!(insn.op, Opcode::Call { .. }) {
                    g.union_without(&RegSet::all(), k);
                }
                for u in insn.uses() {
                    if !k.contains(u) && !u.is_int_zero() {
                        g.insert(u);
                    }
                }
                if let Some(d) = insn.def() {
                    // A guarded def only conditionally overwrites: it is not
                    // a kill, and the destination's old value stays live.
                    if insn.guard.is_none() && !d.is_int_zero() {
                        k.insert(d);
                    } else if insn.guard.is_some() && !k.contains(d) && !d.is_int_zero() {
                        // Conditional def: old value may be observed below,
                        // treat the dest as upward-exposed.
                        g.insert(d);
                    }
                }
            }
        }

        let mut live_in = vec![RegSet::new(); n];
        let mut live_out = vec![RegSet::new(); n];
        // Iterate to fixpoint in postorder (reverse RPO) for fast convergence.
        let order: Vec<BlockId> = cfg.rpo().iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut out = RegSet::new();
                for &s in cfg.succs(b) {
                    out.union_with(&live_in[s.index()]);
                }
                let mut inp = out;
                // in = gen ∪ (out - kill)
                for r in kill[b.index()].iter() {
                    inp.remove(r);
                }
                inp.union_with(&gen[b.index()]);
                if inp != live_in[b.index()] || out != live_out[b.index()] {
                    live_in[b.index()] = inp;
                    live_out[b.index()] = out;
                    changed = true;
                }
            }
        }
        Liveness {
            live_in,
            live_out,
            gen,
            kill,
        }
    }

    pub fn live_in(&self, b: BlockId) -> &RegSet {
        &self.live_in[b.index()]
    }

    pub fn live_out(&self, b: BlockId) -> &RegSet {
        &self.live_out[b.index()]
    }

    pub fn upward_exposed(&self, b: BlockId) -> &RegSet {
        &self.gen[b.index()]
    }

    pub fn kills(&self, b: BlockId) -> &RegSet {
        &self.kill[b.index()]
    }

    /// Is `r` live on entry to `b`?
    pub fn is_live_in(&self, b: BlockId, r: Reg) -> bool {
        self.live_in[b.index()].contains(r)
    }

    /// Registers live at a given instruction position within a block
    /// (just *before* executing instruction `idx`), by walking backward
    /// from the block's live-out set.
    pub fn live_before(&self, f: &Function, b: BlockId, idx: usize) -> RegSet {
        let blk = f.block(b);
        let mut live = self.live_out[b.index()];
        for i in (idx..blk.insns.len()).rev() {
            let insn = &blk.insns[i];
            if let Some(d) = insn.def() {
                if insn.guard.is_none() {
                    live.remove(d);
                }
            }
            if matches!(insn.op, Opcode::Call { .. }) {
                live.union_with(&RegSet::all());
            }
            for u in insn.uses() {
                if !u.is_int_zero() {
                    live.insert(u);
                }
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::{p, r};
    use guardspec_ir::{Guard, Opcode};

    #[test]
    fn straight_line_liveness() {
        let mut fb = FuncBuilder::new("f");
        fb.block("a");
        fb.add(r(3), r(1), r(2)); // uses r1,r2
        fb.block("b");
        fb.sw(r(3), r(4), 0); // uses r3,r4
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.is_live_in(guardspec_ir::BlockId(0), r(1).into()));
        assert!(lv.is_live_in(guardspec_ir::BlockId(0), r(2).into()));
        assert!(lv.is_live_in(guardspec_ir::BlockId(0), r(4).into()));
        // r3 is killed in block a before any use.
        assert!(!lv.is_live_in(guardspec_ir::BlockId(0), r(3).into()));
        assert!(lv.is_live_in(guardspec_ir::BlockId(1), r(3).into()));
    }

    #[test]
    fn figure1_renaming_condition_r6_live_on_fallthru() {
        // The paper's Figure 1: sub r6,r3,1 sits below `beq r1,r2,L1`; r6 is
        // live on the taken path (L1 uses r6), so speculation must rename.
        let mut fb = FuncBuilder::new("fig1");
        fb.block("entry");
        fb.beq(r(1), r(2), "L1");
        fb.block("fall");
        fb.subi(r(6), r(3), 1);
        fb.add(r(8), r(6), r(4));
        fb.jump("L2");
        fb.block("L1");
        fb.add(r(9), r(6), r(5)); // uses the OLD r6
        fb.block("L2");
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        // r6 live into L1 (old value needed) => live out of entry.
        assert!(lv.is_live_in(guardspec_ir::BlockId(2), r(6).into()));
        assert!(lv.live_out(guardspec_ir::BlockId(0)).contains(r(6).into()));
    }

    #[test]
    fn loop_carried_liveness() {
        let mut fb = FuncBuilder::new("l");
        fb.block("head");
        fb.addi(r(1), r(1), 1); // r1 = r1 + 1: live around the loop
        fb.bne(r(1), r(2), "head");
        fb.block("exit");
        fb.sw(r(1), r(3), 0);
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let head = guardspec_ir::BlockId(0);
        assert!(lv.is_live_in(head, r(1).into()));
        assert!(lv.live_out(head).contains(r(1).into()));
        assert!(lv.is_live_in(head, r(2).into()));
    }

    #[test]
    fn guarded_def_is_not_a_kill() {
        let mut fb = FuncBuilder::new("g");
        fb.block("a");
        fb.push(guardspec_ir::Instruction::guarded(
            Opcode::Mov {
                dst: r(5),
                src: r(6),
            },
            Guard::if_true(p(1)),
        ));
        fb.block("b");
        fb.sw(r(5), r(7), 0);
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        // r5's pre-existing value can flow through the guarded mov.
        assert!(lv.is_live_in(guardspec_ir::BlockId(0), r(5).into()));
        // The guard predicate is a use.
        assert!(lv.is_live_in(guardspec_ir::BlockId(0), p(1).into()));
    }

    #[test]
    fn live_before_walks_within_block() {
        let mut fb = FuncBuilder::new("w");
        fb.block("a");
        fb.li(r(1), 3);
        fb.add(r(2), r(1), r(3));
        fb.sw(r(2), r(4), 0);
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let b = guardspec_ir::BlockId(0);
        // Before insn 0: r3, r4 live (r1, r2 defined below before use).
        let l0 = lv.live_before(&f, b, 0);
        assert!(l0.contains(r(3).into()) && l0.contains(r(4).into()));
        assert!(!l0.contains(r(1).into()) && !l0.contains(r(2).into()));
        // Before insn 1 (the add): r1 live now.
        let l1 = lv.live_before(&f, b, 1);
        assert!(l1.contains(r(1).into()));
        assert!(!l1.contains(r(2).into()));
    }

    /// Distilled from a fuzzer-found miscompile
    /// (tests/corpus/speculate-call-liveness.case): a register that looks
    /// dead on a path is still observable by a callee on that path, so a
    /// call must count as a use of every register (callees share the
    /// architectural register file).
    #[test]
    fn call_makes_all_registers_live() {
        let mut fb = FuncBuilder::new("c");
        fb.block("a");
        fb.push(Opcode::Call {
            func: guardspec_ir::FuncId(0),
        });
        fb.block("b");
        fb.lw(r(13), r(0), 0); // r13 redefined before any local use
        fb.sw(r(13), r(0), 1);
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let a = guardspec_ir::BlockId(0);
        // Without the call, r13 would be dead into `a`; the callee may read it.
        assert!(lv.is_live_in(a, r(13).into()));
        assert!(!lv.is_live_in(a, r(0).into()), "r0 stays non-live");
        // live_before the call sees everything; after it only real uses.
        assert!(lv.live_before(&f, a, 0).contains(r(13).into()));
        assert!(!lv
            .live_before(&f, guardspec_ir::BlockId(1), 1)
            .contains(r(5).into()));
    }

    #[test]
    fn zero_register_never_live() {
        let mut fb = FuncBuilder::new("z");
        fb.block("a");
        fb.add(r(1), r(0), r(0));
        fb.sw(r(1), r(2), 0);
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(!lv.is_live_in(guardspec_ir::BlockId(0), r(0).into()));
    }
}
