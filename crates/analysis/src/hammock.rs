//! Hammock (triangle / diamond) detection — the single-branch regions the
//! paper's guarded-execution transform if-converts.
//!
//! A *diamond* is `head -> {fall, taken} -> join`; a *triangle* has one
//! empty arm (`head -> fall -> join`, `head -> join`, or symmetric).  The
//! arms must have no other predecessors and no side entries, so deleting
//! the branch and predicating the arm bodies is control-equivalent.

use crate::cfg::Cfg;
use guardspec_ir::{BlockId, Function, Opcode};

/// Shape of a detected hammock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HammockKind {
    /// Both arms non-empty.
    Diamond,
    /// Only the fall-through arm exists (taken edge goes straight to join).
    TriangleFall,
    /// Only the taken arm exists (fall-through edge goes straight to join).
    TriangleTaken,
}

/// An if-conversion candidate region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Hammock {
    pub kind: HammockKind,
    /// Block ending in the conditional branch.
    pub head: BlockId,
    /// Fall-through arm (executes when the branch is *not* taken).
    pub fall_arm: Option<BlockId>,
    /// Taken arm (executes when the branch *is* taken).
    pub taken_arm: Option<BlockId>,
    /// Join block where both paths merge.
    pub join: BlockId,
}

impl Hammock {
    /// The blocks that would be merged into `head` by if-conversion.
    pub fn arm_blocks(&self) -> impl Iterator<Item = BlockId> {
        self.fall_arm.into_iter().chain(self.taken_arm)
    }
}

/// True if `b` is a straight-line arm: single predecessor `head`, and
/// control continues only to `join` (by fall-through or unconditional jump).
fn is_arm(f: &Function, cfg: &Cfg, b: BlockId, head: BlockId, join: BlockId) -> bool {
    cfg.preds(b) == [head] && cfg.succs(b) == [join] && {
        // No calls / returns / jtab inside the arm; at most a final jump.
        let blk = f.block(b);
        blk.insns
            .iter()
            .enumerate()
            .all(|(i, insn)| match &insn.op {
                Opcode::Jump { .. } => i + 1 == blk.insns.len(),
                Opcode::Branch { .. }
                | Opcode::Jtab { .. }
                | Opcode::Ret
                | Opcode::Halt
                | Opcode::Call { .. } => false,
                _ => true,
            })
    }
}

/// Find every hammock headed by a conditional branch in `f`.
pub fn find_hammocks(f: &Function, cfg: &Cfg) -> Vec<Hammock> {
    let mut out = Vec::new();
    for (head, blk) in f.iter_blocks() {
        let Some(term) = blk.terminator() else {
            continue;
        };
        // Guarded (predicated) branches have three-way behavior and are not
        // if-conversion candidates.
        if term.guard.is_some() {
            continue;
        }
        let taken = match &term.op {
            Opcode::Branch {
                target,
                likely: false,
                ..
            } => *target,
            _ => continue,
        };
        if !cfg.is_reachable(head) {
            continue;
        }
        let succs = cfg.succs(head);
        if succs.len() != 2 {
            continue;
        }
        // Fall-through successor is listed first by construction.
        let fall = succs[0];
        debug_assert_eq!(succs[1], taken);
        if fall == taken {
            continue;
        }

        // Diamond: fall and taken are arms joining at the same block.
        let fall_join = (cfg.succs(fall).len() == 1).then(|| cfg.succs(fall)[0]);
        let taken_join = (cfg.succs(taken).len() == 1).then(|| cfg.succs(taken)[0]);
        if let (Some(j1), Some(j2)) = (fall_join, taken_join) {
            if j1 == j2
                && is_arm(f, cfg, fall, head, j1)
                && is_arm(f, cfg, taken, head, j1)
                && j1 != head
            {
                out.push(Hammock {
                    kind: HammockKind::Diamond,
                    head,
                    fall_arm: Some(fall),
                    taken_arm: Some(taken),
                    join: j1,
                });
                continue;
            }
        }
        // TriangleFall: taken edge goes straight to the join.
        if let Some(j) = fall_join {
            if j == taken && is_arm(f, cfg, fall, head, j) && j != head {
                out.push(Hammock {
                    kind: HammockKind::TriangleFall,
                    head,
                    fall_arm: Some(fall),
                    taken_arm: None,
                    join: j,
                });
                continue;
            }
        }
        // TriangleTaken: fall-through edge goes straight to the join.
        if let Some(j) = taken_join {
            if j == fall && is_arm(f, cfg, taken, head, j) && j != head {
                out.push(Hammock {
                    kind: HammockKind::TriangleTaken,
                    head,
                    fall_arm: None,
                    taken_arm: Some(taken),
                    join: j,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    #[test]
    fn detects_diamond() {
        let mut fb = FuncBuilder::new("d");
        fb.block("head");
        fb.beq(r(1), r(2), "t");
        fb.block("f");
        fb.addi(r(3), r(3), 1);
        fb.jump("join");
        fb.block("t");
        fb.addi(r(3), r(3), 2);
        fb.block("join");
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let hs = find_hammocks(&f, &cfg);
        assert_eq!(hs.len(), 1);
        let h = hs[0];
        assert_eq!(h.kind, HammockKind::Diamond);
        assert_eq!(h.head, BlockId(0));
        assert_eq!(h.fall_arm, Some(BlockId(1)));
        assert_eq!(h.taken_arm, Some(BlockId(2)));
        assert_eq!(h.join, BlockId(3));
    }

    #[test]
    fn detects_triangle_fall() {
        // if (cond) skip the increment.
        let mut fb = FuncBuilder::new("t");
        fb.block("head");
        fb.beq(r(1), r(2), "join");
        fb.block("body");
        fb.addi(r(3), r(3), 1);
        fb.block("join");
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let hs = find_hammocks(&f, &cfg);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].kind, HammockKind::TriangleFall);
        assert_eq!(hs[0].fall_arm, Some(BlockId(1)));
        assert_eq!(hs[0].taken_arm, None);
    }

    #[test]
    fn rejects_arm_with_extra_predecessor() {
        // A side entry jumps into the fall-through arm, so predicating the
        // arm would wrongly execute it on the side-entry path too.
        let mut fb = FuncBuilder::new("x");
        fb.block("pre");
        fb.beq(r(9), r(9), "f"); // side entry into the arm
        fb.block("head");
        fb.beq(r(1), r(2), "t");
        fb.block("f");
        fb.addi(r(3), r(3), 1);
        fb.jump("join");
        fb.block("t");
        fb.addi(r(3), r(3), 2);
        fb.block("join");
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        // Neither the diamond at `head` (arm `f` has 2 preds) nor anything
        // at `pre` qualifies.
        assert!(find_hammocks(&f, &cfg).iter().all(|h| h.head != BlockId(1)));
        assert!(find_hammocks(&f, &cfg).is_empty());
    }

    #[test]
    fn chained_arm_becomes_triangle_at_inner_join() {
        // head -> t -> f and head -> f: a TriangleTaken joining at `f`.
        let mut fb = FuncBuilder::new("x");
        fb.block("head");
        fb.beq(r(1), r(2), "t");
        fb.block("f");
        fb.addi(r(3), r(3), 1);
        fb.halt();
        fb.block("t");
        fb.addi(r(3), r(3), 2);
        fb.jump("f");
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let hs = find_hammocks(&f, &cfg);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].kind, HammockKind::TriangleTaken);
        assert_eq!(hs[0].join, BlockId(1));
    }

    #[test]
    fn rejects_arm_containing_call() {
        let mut pb = ProgramBuilder::new();
        let mut fb = FuncBuilder::new("main");
        fb.block("head");
        fb.beq(r(1), r(2), "join");
        fb.block("body");
        fb.call("helper");
        fb.block("join");
        fb.halt();
        let mut h = FuncBuilder::new("helper");
        h.block("e");
        h.ret();
        pb.add_func(fb);
        pb.add_func(h);
        let prog = pb.finish("main");
        let f = &prog.funcs[0];
        let cfg = Cfg::build(f);
        assert!(find_hammocks(f, &cfg).is_empty());
    }

    #[test]
    fn branch_likely_heads_are_not_candidates() {
        let mut fb = FuncBuilder::new("bl");
        fb.block("head");
        fb.beql(r(1), r(2), "join");
        fb.block("body");
        fb.addi(r(3), r(3), 1);
        fb.block("join");
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        assert!(find_hammocks(&f, &cfg).is_empty());
    }

    #[test]
    fn loop_latch_is_not_a_hammock() {
        let mut fb = FuncBuilder::new("l");
        fb.block("head");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(2), "head");
        fb.block("exit");
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        assert!(find_hammocks(&f, &cfg).is_empty());
    }
}
