//! Natural-loop detection.
//!
//! The Figure-6 algorithm runs "for each procedure: detect all loops and
//! create a loop-list L; for each branch in L ...".  This module finds the
//! natural loops (back edges whose head dominates their tail), their bodies,
//! exits, and the conditional branches inside them.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use guardspec_ir::{BlockId, Function, InsnRef};

/// One natural loop.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// Tails of the back edges (`latch -> header`).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop body, header first, ascending thereafter.
    pub body: Vec<BlockId>,
    /// Edges leaving the loop: `(from_in_loop, to_outside)`.
    pub exits: Vec<(BlockId, BlockId)>,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
}

impl NaturalLoop {
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search_by(|x| x.0.cmp(&b.0)).is_ok() || self.header == b
    }
}

/// All natural loops of a function, outermost first.
#[derive(Clone, Debug)]
pub struct LoopForest {
    pub loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Find the natural loops of `f`.  Back edges with the same header are
    /// merged into a single loop, standard practice.
    pub fn build(f: &Function, cfg: &Cfg, dom: &DomTree) -> LoopForest {
        // Collect back edges grouped by header.
        let mut by_header: std::collections::BTreeMap<BlockId, Vec<BlockId>> =
            std::collections::BTreeMap::new();
        for (from, to) in cfg.edges() {
            if cfg.is_reachable(from) && dom.dominates(to, from) {
                by_header.entry(to).or_default().push(from);
            }
        }

        let mut loops = Vec::new();
        for (header, latches) in by_header {
            // Body = header plus all blocks that reach a latch without
            // passing through the header (classic worklist).
            let mut in_body = vec![false; cfg.num_blocks()];
            in_body[header.index()] = true;
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(b) = work.pop() {
                if in_body[b.index()] {
                    continue;
                }
                in_body[b.index()] = true;
                for &p in cfg.preds(b) {
                    if !in_body[p.index()] {
                        work.push(p);
                    }
                }
            }
            let mut body: Vec<BlockId> = (0..cfg.num_blocks())
                .filter(|i| in_body[*i])
                .map(|i| BlockId(i as u32))
                .collect();
            body.sort_by_key(|b| (b != &header, b.0));

            let mut exits = Vec::new();
            for &b in &body {
                for &s in cfg.succs(b) {
                    if !in_body[s.index()] {
                        exits.push((b, s));
                    }
                }
            }
            loops.push(NaturalLoop {
                header,
                latches,
                body,
                exits,
                depth: 0,
            });
        }

        // Nesting depth: loop A contains loop B if A's body contains B's
        // header and A != B.
        let contains =
            |a: &NaturalLoop, b: &NaturalLoop| a.header != b.header && a.body.contains(&b.header);
        let depths: Vec<usize> = loops
            .iter()
            .map(|l| 1 + loops.iter().filter(|o| contains(o, l)).count())
            .collect();
        for (l, d) in loops.iter_mut().zip(depths) {
            l.depth = d;
        }
        loops.sort_by_key(|l| (l.depth, l.header.0));
        let _ = f;
        LoopForest { loops }
    }

    /// Conditional branches inside loop `l` of function `f`, as instruction
    /// references paired with whether the branch is a back edge of this loop
    /// (branch target == header from a latch — the paper's "backward branch").
    pub fn loop_branches(&self, f: &Function, l: &NaturalLoop) -> Vec<(InsnRef, bool)> {
        let mut out = Vec::new();
        for &b in &l.body {
            let blk = f.block(b);
            for (i, insn) in blk.insns.iter().enumerate() {
                if insn.is_cond_branch() {
                    let backward = match &insn.op {
                        guardspec_ir::Opcode::Branch { target, .. } => target.0 <= b.0,
                        _ => false,
                    };
                    out.push((
                        InsnRef {
                            func: guardspec_ir::FuncId(0),
                            block: b,
                            idx: i as u32,
                        },
                        backward,
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    /// Figure 2's loop: B1 -> {B2, B3} -> B4 -> B1 | exit.
    fn figure2_loop() -> guardspec_ir::Function {
        let mut fb = FuncBuilder::new("fig2");
        fb.block("pre");
        fb.li(r(1), 0);
        fb.block("B1");
        fb.beq(r(2), r(3), "B3");
        fb.block("B2");
        fb.addi(r(4), r(4), 1);
        fb.jump("B4");
        fb.block("B3");
        fb.addi(r(4), r(4), 2);
        fb.block("B4");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(5), "B1");
        fb.block("exit");
        fb.halt();
        fb.finish()
    }

    #[test]
    fn finds_the_single_loop() {
        let f = figure2_loop();
        let cfg = Cfg::build(&f);
        let dom = DomTree::dominators(&cfg);
        let forest = LoopForest::build(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(4)]);
        assert_eq!(l.body.len(), 4);
        assert!(l.contains(BlockId(2)));
        assert!(l.contains(BlockId(3)));
        assert!(!l.contains(BlockId(0)));
        assert_eq!(l.exits, vec![(BlockId(4), BlockId(5))]);
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn loop_branches_classify_direction() {
        let f = figure2_loop();
        let cfg = Cfg::build(&f);
        let dom = DomTree::dominators(&cfg);
        let forest = LoopForest::build(&f, &cfg, &dom);
        let l = &forest.loops[0];
        let brs = forest.loop_branches(&f, l);
        assert_eq!(brs.len(), 2);
        // B1's branch is forward, B4's latch branch is backward.
        let fwd = brs.iter().find(|(r, _)| r.block == BlockId(1)).unwrap();
        let bwd = brs.iter().find(|(r, _)| r.block == BlockId(4)).unwrap();
        assert!(!fwd.1);
        assert!(bwd.1);
    }

    #[test]
    fn nested_loops_have_increasing_depth() {
        let mut fb = FuncBuilder::new("nest");
        fb.block("outer");
        fb.addi(r(1), r(1), 1);
        fb.block("inner");
        fb.addi(r(2), r(2), 1);
        fb.bne(r(2), r(3), "inner");
        fb.block("latch");
        fb.bne(r(1), r(4), "outer");
        fb.block("exit");
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let dom = DomTree::dominators(&cfg);
        let forest = LoopForest::build(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 2);
        assert_eq!(forest.loops[0].depth, 1);
        assert_eq!(forest.loops[1].depth, 2);
        assert_eq!(forest.loops[0].header, BlockId(0));
        assert_eq!(forest.loops[1].header, BlockId(1));
        // Inner loop body is a subset of outer.
        for b in &forest.loops[1].body {
            assert!(forest.loops[0].body.contains(b));
        }
    }

    #[test]
    fn self_loop_is_detected() {
        let mut fb = FuncBuilder::new("s");
        fb.block("a");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(2), "a");
        fb.block("end");
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let dom = DomTree::dominators(&cfg);
        let forest = LoopForest::build(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].body, vec![BlockId(0)]);
        assert_eq!(forest.loops[0].latches, vec![BlockId(0)]);
    }
}
