//! Dominator and post-dominator trees (Cooper–Harvey–Kennedy).

use crate::cfg::Cfg;
use guardspec_ir::BlockId;

/// A dominator tree: immediate dominators for each reachable block.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b] == Some(d)`: `d` immediately dominates `b`.
    /// The root's idom is itself; unreachable blocks are `None`.
    idom: Vec<Option<BlockId>>,
    root: BlockId,
}

impl DomTree {
    /// Dominators of the forward CFG rooted at the entry block.
    pub fn dominators(cfg: &Cfg) -> DomTree {
        let order: Vec<BlockId> = cfg.rpo().to_vec();
        Self::compute(
            cfg.num_blocks(),
            BlockId(0),
            &order,
            |b| cfg.preds(b).to_vec(),
            |b| cfg.rpo_index(b),
        )
    }

    /// Post-dominators: dominators of the reversed CFG.  Because a function
    /// may have several exits (`halt`/`ret`/`jtab`-less blocks), a virtual
    /// exit is implied: blocks with no successors are roots; the tree is
    /// computed with all of them merged.  Returns `None` if the function has
    /// no exit (an infinite loop), in which case post-dominance is undefined.
    pub fn post_dominators(cfg: &Cfg) -> Option<DomTree> {
        let n = cfg.num_blocks();
        let exits: Vec<BlockId> = (0..n)
            .map(|i| BlockId(i as u32))
            .filter(|b| cfg.is_reachable(*b) && cfg.succs(*b).is_empty())
            .collect();
        if exits.is_empty() {
            return None;
        }
        // Virtual node index n; edges virtual->exits in the reverse graph.
        let total = n + 1;
        let virt = BlockId(n as u32);
        let rsucc = |b: BlockId| -> Vec<BlockId> {
            if b == virt {
                exits.clone()
            } else {
                cfg.preds(b).to_vec()
            }
        };
        // Reverse postorder of the reverse graph from the virtual exit.
        let mut state = vec![0u8; total];
        let mut post = Vec::with_capacity(total);
        let mut stack = vec![(virt, 0usize)];
        state[virt.index()] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = rsucc(b);
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_index = vec![usize::MAX; total];
        for (i, b) in post.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let tree = Self::compute(
            total,
            virt,
            &post,
            |b| {
                if b == virt {
                    Vec::new()
                } else {
                    let mut ps: Vec<BlockId> = cfg.succs(b).to_vec();
                    if cfg.succs(b).is_empty() {
                        ps.push(virt);
                    }
                    ps
                }
            },
            |b| {
                let i = rpo_index[b.index()];
                (i != usize::MAX).then_some(i)
            },
        );
        Some(tree)
    }

    fn compute(
        n: usize,
        root: BlockId,
        rpo: &[BlockId],
        preds: impl Fn(BlockId) -> Vec<BlockId>,
        rpo_index: impl Fn(BlockId) -> Option<usize>,
    ) -> DomTree {
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[root.index()] = Some(root);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for p in preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, root }
    }

    pub fn root(&self) -> BlockId {
        self.root
    }

    /// Immediate dominator of `b` (`None` for the root or unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom.get(b.index()).copied().flatten() {
            Some(d) if d != b => Some(d),
            Some(_) => None, // root
            None => None,
        }
    }

    /// Does `a` dominate `b` (reflexively)?
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &impl Fn(BlockId) -> Option<usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        let (ia, ib) = (rpo_index(a).unwrap(), rpo_index(b).unwrap());
        if ia > ib {
            a = idom[a.index()].unwrap();
        } else {
            b = idom[b.index()].unwrap();
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    fn diamond_with_loop() -> guardspec_ir::Function {
        // b0 -> b1 -> {b2, b3} -> b4 -> b1 (loop), b4 -> b5 exit
        let mut fb = FuncBuilder::new("f");
        fb.block("b0");
        fb.li(r(1), 0);
        fb.block("b1");
        fb.beq(r(1), r(2), "b3");
        fb.block("b2");
        fb.addi(r(3), r(3), 1);
        fb.jump("b4");
        fb.block("b3");
        fb.addi(r(3), r(3), 2);
        fb.block("b4");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(4), "b1");
        fb.block("b5");
        fb.halt();
        fb.finish()
    }

    #[test]
    fn dominators_of_diamond_loop() {
        let f = diamond_with_loop();
        let cfg = Cfg::build(&f);
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(4)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(5)), Some(BlockId(4)));
        assert!(dom.dominates(BlockId(1), BlockId(5)));
        assert!(!dom.dominates(BlockId(2), BlockId(4)));
        assert!(dom.dominates(BlockId(4), BlockId(4)));
    }

    #[test]
    fn post_dominators_of_diamond_loop() {
        let f = diamond_with_loop();
        let cfg = Cfg::build(&f);
        let pdom = DomTree::post_dominators(&cfg).expect("has exit");
        // b4 post-dominates both arms and the branch block.
        assert!(pdom.dominates(BlockId(4), BlockId(1)));
        assert!(pdom.dominates(BlockId(4), BlockId(2)));
        assert!(pdom.dominates(BlockId(4), BlockId(3)));
        assert!(pdom.dominates(BlockId(5), BlockId(0)));
        // Arms do not post-dominate the branch.
        assert!(!pdom.dominates(BlockId(2), BlockId(1)));
    }

    #[test]
    fn no_exit_returns_none() {
        let mut fb = FuncBuilder::new("spin");
        fb.block("a");
        fb.jump("a");
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        assert!(DomTree::post_dominators(&cfg).is_none());
    }
}
