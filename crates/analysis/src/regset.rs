//! Dense bitset over register names, used by liveness.

use guardspec_ir::Reg;

const WORDS: usize = Reg::DENSE_COUNT.div_ceil(64);

/// A fixed-size bitset keyed by [`Reg::dense_index`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegSet {
    bits: [u64; WORDS],
}

impl RegSet {
    pub fn new() -> RegSet {
        RegSet { bits: [0; WORDS] }
    }

    /// The set of every register except `r0` (which is hardwired zero).
    pub fn all() -> RegSet {
        let mut s = RegSet::new();
        for w in s.bits.iter_mut() {
            *w = u64::MAX;
        }
        let spare = WORDS * 64 - Reg::DENSE_COUNT;
        s.bits[WORDS - 1] >>= spare;
        s.bits[0] &= !1; // r0 has dense index 0
        s
    }

    /// `self |= other - removed`; returns true if anything changed.
    pub fn union_without(&mut self, other: &RegSet, removed: &RegSet) -> bool {
        let mut changed = false;
        for ((a, b), k) in self.bits.iter_mut().zip(&other.bits).zip(&removed.bits) {
            let new = *a | (*b & !*k);
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    pub fn insert(&mut self, r: Reg) -> bool {
        let i = r.dense_index();
        let (w, b) = (i / 64, i % 64);
        let had = self.bits[w] & (1 << b) != 0;
        self.bits[w] |= 1 << b;
        !had
    }

    pub fn remove(&mut self, r: Reg) -> bool {
        let i = r.dense_index();
        let (w, b) = (i / 64, i % 64);
        let had = self.bits[w] & (1 << b) != 0;
        self.bits[w] &= !(1 << b);
        had
    }

    pub fn contains(&self, r: Reg) -> bool {
        let i = r.dense_index();
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if anything changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate the members in dense-index order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        use guardspec_ir::reg::{NUM_FLT_REGS, NUM_INT_REGS};
        use guardspec_ir::{FltReg, IntReg, PredReg};
        (0..Reg::DENSE_COUNT)
            .filter(move |i| self.bits[i / 64] & (1 << (i % 64)) != 0)
            .map(move |i| {
                let ni = NUM_INT_REGS as usize;
                let nf = NUM_FLT_REGS as usize;
                if i < ni {
                    Reg::Int(IntReg(i as u8))
                } else if i < ni + nf {
                    Reg::Flt(FltReg((i - ni) as u8))
                } else {
                    Reg::Pred(PredReg((i - ni - nf) as u8))
                }
            })
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> RegSet {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::{FltReg, IntReg, PredReg};

    #[test]
    fn insert_contains_remove() {
        let mut s = RegSet::new();
        let r = Reg::Int(IntReg(5));
        assert!(!s.contains(r));
        assert!(s.insert(r));
        assert!(!s.insert(r));
        assert!(s.contains(r));
        assert!(s.remove(r));
        assert!(!s.remove(r));
        assert!(s.is_empty());
    }

    #[test]
    fn iter_roundtrips_all_files() {
        let regs = vec![
            Reg::Int(IntReg(0)),
            Reg::Int(IntReg(63)),
            Reg::Flt(FltReg(0)),
            Reg::Flt(FltReg(63)),
            Reg::Pred(PredReg(0)),
            Reg::Pred(PredReg(15)),
        ];
        let s: RegSet = regs.iter().copied().collect();
        let back: Vec<Reg> = s.iter().collect();
        assert_eq!(back.len(), regs.len());
        for r in &regs {
            assert!(back.contains(r));
        }
    }

    #[test]
    fn union_reports_change() {
        let mut a: RegSet = [Reg::Int(IntReg(1))].into_iter().collect();
        let b: RegSet = [Reg::Int(IntReg(2))].into_iter().collect();
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), 2);
    }
}
