//! Explicit control-flow graph over one function.

use guardspec_ir::{BlockId, Function};

/// Control-flow graph: successor and predecessor adjacency plus orderings.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<usize>,
}

impl Cfg {
    /// Build the CFG of `f`.  Successor order: fall-through first, then
    /// explicit targets (matching [`Function::successors`]).
    pub fn build(f: &Function) -> Cfg {
        let n = f.num_blocks();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, _) in f.iter_blocks() {
            let ss = f.successors(id);
            for s in &ss {
                preds[s.index()].push(id);
            }
            succs[id.index()] = ss;
        }

        // Reverse postorder from the entry via iterative DFS.
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < succs[b.index()].len() {
                let s = succs[b.index()][*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in post.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            succs,
            preds,
            rpo: post,
            rpo_index,
        }
    }

    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Reverse postorder over the *reachable* blocks (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in reverse postorder; `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        let i = self.rpo_index[b.index()];
        (i != usize::MAX).then_some(i)
    }

    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Iterate every CFG edge `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (BlockId, BlockId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(i, ss)| ss.iter().map(move |s| (BlockId(i as u32), *s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    fn diamond() -> guardspec_ir::Function {
        let mut fb = FuncBuilder::new("d");
        fb.block("b1");
        fb.beq(r(1), r(2), "b3");
        fb.block("b2");
        fb.addi(r(3), r(3), 1);
        fb.jump("b4");
        fb.block("b3");
        fb.addi(r(3), r(3), 2);
        fb.block("b4");
        fb.halt();
        fb.finish()
    }

    #[test]
    fn diamond_adjacency() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.succs(BlockId(1)), &[BlockId(3)]);
        assert_eq!(cfg.succs(BlockId(2)), &[BlockId(3)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(0)), &[] as &[BlockId]);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_topology() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        // Join must come after both arms.
        let join = cfg.rpo_index(BlockId(3)).unwrap();
        assert!(join > cfg.rpo_index(BlockId(1)).unwrap());
        assert!(join > cfg.rpo_index(BlockId(2)).unwrap());
    }

    #[test]
    fn unreachable_block_not_in_rpo() {
        let mut fb = FuncBuilder::new("u");
        fb.block("a");
        fb.jump("c");
        fb.block("b");
        fb.addi(r(1), r(1), 1);
        fb.block("c");
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        assert!(!cfg.is_reachable(BlockId(1)));
        assert_eq!(cfg.rpo().len(), 2);
    }

    #[test]
    fn loop_edges_enumerate() {
        let mut fb = FuncBuilder::new("l");
        fb.block("head");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(2), "head");
        fb.block("exit");
        fb.halt();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let edges: Vec<_> = cfg.edges().collect();
        assert!(edges.contains(&(BlockId(0), BlockId(0))));
        assert!(edges.contains(&(BlockId(0), BlockId(1))));
    }
}
