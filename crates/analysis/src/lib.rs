//! # guardspec-analysis
//!
//! Control-flow and dataflow analyses over [`guardspec_ir`] functions:
//!
//! * [`cfg`] — explicit CFG with predecessor/successor edges and orderings,
//! * [`dom`] — dominator and post-dominator trees (Cooper–Harvey–Kennedy),
//! * [`loops`] — natural-loop detection (back edges, bodies, exits), the
//!   unit the paper's Figure-6 algorithm iterates over,
//! * [`liveness`] — per-block live-in/live-out register sets, needed by the
//!   speculation transform to decide when software renaming is required
//!   ("register r6 is renamed to r9 since it's live on the fall-thru path"),
//! * [`hammock`] — detection of the if-conversion-eligible single-branch
//!   regions (triangles and diamonds).

pub mod cfg;
pub mod dom;
pub mod hammock;
pub mod liveness;
pub mod loops;
pub mod regset;

pub use cfg::Cfg;
pub use dom::DomTree;
pub use hammock::{find_hammocks, Hammock, HammockKind};
pub use liveness::Liveness;
pub use loops::{LoopForest, NaturalLoop};
pub use regset::RegSet;
