//! Dominance and hammock discovery on irreducible-adjacent shapes — the
//! cross-jump CFGs the fuzz generator emits (`ShapeParams::cross_jumps`),
//! where an arm jumps to an *enclosing* join instead of its own, giving
//! joins multiple unstructured entries and arms that are not single-exit.

use guardspec_analysis::{find_hammocks, Cfg, DomTree};
use guardspec_ir::builder::{single_func_program, FuncBuilder};
use guardspec_ir::reg::r;
use guardspec_ir::validate::assert_valid;
use guardspec_ir::{BlockId, FuncId};

/// Outer diamond whose inner arm cross-jumps straight to the *outer* join,
/// skipping the inner join:
///
/// ```text
/// head ──► inner_head ──► a ──► outer_join      (cross jump)
///    │          │         └─X   inner_join ──► outer_join
///    └────────────────────────────► outer_join
/// ```
fn cross_jump_program() -> guardspec_ir::Program {
    let mut fb = FuncBuilder::new("xj");
    fb.block("head"); // 0
    fb.bgtz(r(1), "outer_join");
    fb.block("inner_head"); // 1
    fb.bgtz(r(2), "inner_join");
    fb.block("a"); // 2
    fb.addi(r(3), r(3), 1);
    fb.jump("outer_join"); // cross jump: bypasses inner_join
    fb.block("inner_join"); // 3
    fb.addi(r(4), r(4), 1);
    fb.block("outer_join"); // 4
    fb.sw(r(3), r(0), 0);
    fb.halt();
    single_func_program(fb)
}

#[test]
fn cross_jump_dominance_is_sound() {
    let prog = cross_jump_program();
    assert_valid(&prog);
    let f = prog.func(FuncId(0));
    let cfg = Cfg::build(f);
    let dom = DomTree::dominators(&cfg);
    let (head, inner_head, a, inner_join, outer_join) =
        (BlockId(0), BlockId(1), BlockId(2), BlockId(3), BlockId(4));
    // The entry dominates everything; the outer join is reachable three
    // ways, so only the head dominates it.
    for b in [inner_head, a, inner_join, outer_join] {
        assert!(dom.dominates(head, b));
    }
    assert_eq!(dom.idom(outer_join), Some(head));
    // The cross jump makes `a` bypass inner_join: inner_join must NOT
    // dominate the outer join, and `a` dominates nothing but itself.
    assert!(!dom.dominates(inner_join, outer_join));
    assert!(!dom.dominates(a, outer_join));
    assert!(dom.dominates(inner_head, a));
    assert!(dom.dominates(inner_head, inner_join));
}

#[test]
fn cross_jump_post_dominance_is_sound() {
    let prog = cross_jump_program();
    let f = prog.func(FuncId(0));
    let cfg = Cfg::build(f);
    let pdom = DomTree::post_dominators(&cfg).expect("single exit");
    let outer_join = BlockId(4);
    // Every path ends in the outer join: it post-dominates all blocks.
    for b in 0..5 {
        assert!(pdom.dominates(outer_join, BlockId(b)));
    }
    // inner_join does not post-dominate inner_head (the cross jump escapes).
    assert!(!pdom.dominates(BlockId(3), BlockId(1)));
}

#[test]
fn cross_jump_reshapes_hammock_join() {
    let prog = cross_jump_program();
    let f = prog.func(FuncId(0));
    let cfg = Cfg::build(f);
    let hs = find_hammocks(f, &cfg);
    // The cross jump does not destroy the hammock — it re-points the join:
    // both arms of inner_head (a, inner_join) still reconverge, but at the
    // OUTER join.  Converting with join=outer_join is sound; converting
    // with the structural inner_join would not be.
    assert_eq!(hs.len(), 1, "{hs:?}");
    assert_eq!(hs[0].head, BlockId(1));
    assert_eq!(hs[0].join, BlockId(4), "join must be the cross-jump target");
    // head(0) is not a hammock head: its fall path is a whole region.
    assert!(hs.iter().all(|h| h.head != BlockId(0)));
}

/// When the cross jump skips past the reconvergence point entirely, the
/// arms no longer share a successor and no hammock may be reported.
#[test]
fn cross_jump_past_join_is_not_a_hammock() {
    let mut fb = FuncBuilder::new("xp");
    fb.block("head"); // 0
    fb.bgtz(r(2), "inner_join");
    fb.block("a"); // 1
    fb.addi(r(3), r(3), 1);
    fb.jump("far"); // skips the join where the other arm lands
    fb.block("inner_join"); // 2
    fb.addi(r(4), r(4), 1);
    fb.block("mid"); // 3
    fb.addi(r(5), r(5), 1);
    fb.block("far"); // 4
    fb.sw(r(3), r(0), 0);
    fb.halt();
    let prog = single_func_program(fb);
    assert_valid(&prog);
    let f = prog.func(FuncId(0));
    let cfg = Cfg::build(f);
    let hs = find_hammocks(f, &cfg);
    assert!(
        hs.iter().all(|h| h.head != BlockId(0)),
        "arms reconverge nowhere adjacent: {hs:?}"
    );
}

/// Two conditionals branching into a shared tail from different places —
/// the tail has multiple unstructured predecessors (irreducible-adjacent
/// but still a DAG).
#[test]
fn shared_tail_with_multiple_entries() {
    let mut fb = FuncBuilder::new("st");
    fb.block("e"); // 0
    fb.bgtz(r(1), "tail");
    fb.block("m1"); // 1
    fb.bgtz(r(2), "tail");
    fb.block("m2"); // 2
    fb.addi(r(3), r(3), 1);
    fb.block("tail"); // 3
    fb.sw(r(3), r(0), 0);
    fb.halt();
    let prog = single_func_program(fb);
    assert_valid(&prog);
    let f = prog.func(FuncId(0));
    let cfg = Cfg::build(f);
    let dom = DomTree::dominators(&cfg);
    assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
    assert!(!dom.dominates(BlockId(1), BlockId(3)));
    // e → {tail, m1} with m1's region falling through to tail: e heads a
    // triangle with arm chain only if m1 is a straight arm — it is not
    // (it branches), so no diamond/triangle at e.
    let hs = find_hammocks(f, &cfg);
    assert!(hs.iter().all(|h| h.head != BlockId(0)));
    // m1 DOES head a triangle: m2 is a straight arm joining at tail.
    assert!(hs.iter().any(|h| h.head == BlockId(1)));
}

/// A bounded loop with a second, early exit (multi-exit): dominance inside
/// the loop body must still hold and no hammock may span the exit branch.
#[test]
fn multi_exit_loop_dominance() {
    let mut fb = FuncBuilder::new("me");
    fb.block("e"); // 0
    fb.li(r(1), 5);
    fb.block("head"); // 1
    fb.subi(r(1), r(1), 1);
    fb.bgtz(r(2), "break"); // early exit
    fb.block("latch"); // 2
    fb.bgtz(r(1), "head"); // backedge
    fb.block("break"); // 3
    fb.sw(r(1), r(0), 0);
    fb.halt();
    let prog = single_func_program(fb);
    assert_valid(&prog);
    let f = prog.func(FuncId(0));
    let cfg = Cfg::build(f);
    let dom = DomTree::dominators(&cfg);
    assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
    // `break` is reachable from head and latch: idom is head.
    assert_eq!(dom.idom(BlockId(3)), Some(BlockId(1)));
    let pdom = DomTree::post_dominators(&cfg).expect("single exit");
    assert!(pdom.dominates(BlockId(3), BlockId(0)));
    // The latch does not post-dominate the head (early exit skips it).
    assert!(!pdom.dominates(BlockId(2), BlockId(1)));
    // The early-exit branch has a backedge-bearing "arm": not a hammock.
    let hs = find_hammocks(f, &cfg);
    assert!(hs.iter().all(|h| h.head != BlockId(1)), "{hs:?}");
}
