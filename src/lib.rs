//! # guardspec — facade crate
//!
//! Re-exports the full API: IR, analyses, interpreter/profiler, predictors,
//! the R10000-like timing simulator, the speculation/guarded-execution/
//! split-branch transforms, and the synthetic workloads.
//!
//! See README.md for a tour and DESIGN.md for the system inventory.

pub use guardspec_analysis as analysis;
pub use guardspec_core as core;
pub use guardspec_interp as interp;
pub use guardspec_ir as ir;
pub use guardspec_predict as predict;
pub use guardspec_sim as sim;
pub use guardspec_workloads as workloads;
