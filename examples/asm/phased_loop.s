# The paper's Section 4 running example as a hand-written assembly file:
# a 200-iteration loop whose branch is taken for the first 40% of the
# iteration space, toggles for 20%, and is not taken for the last 40%.
#
# Try:
#   cargo run --release -p guardspec-bench --bin gsx -- prof examples/asm/phased_loop.s
#   cargo run --release -p guardspec-bench --bin gsx -- opt  examples/asm/phased_loop.s
#   cargo run --release -p guardspec-bench --bin gsx -- sim  examples/asm/phased_loop.s
func main:
entry:
    li r1, 0          # i
    li r9, 200        # trip count
head:
    slti r2, r1, 80   # phase A: i < 80 -> taken
    bne r2, r0, taken
mid:
    slti r3, r1, 120  # phase B: 80 <= i < 120 -> toggle on parity
    beq r3, r0, fall
toggle:
    andi r4, r1, 1
    beq r4, r0, fall
taken:
    addi r5, r5, 1
    j latch
fall:
    addi r6, r6, 1
latch:
    addi r1, r1, 1
    bne r1, r9, head
done:
    sw r5, 1(r0)
    sw r6, 2(r0)
    halt
