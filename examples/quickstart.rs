//! Quickstart: build a small loop with a phased branch, profile it, apply
//! the Figure-6 transforms, and compare simulated performance under the
//! three schemes of the paper's evaluation.
//!
//! Run with: `cargo run --release --example quickstart`

use guardspec::core::{transform_program, DriverOptions};
use guardspec::interp::profile::profile_program;
use guardspec::ir::builder::*;
use guardspec::ir::reg::r;
use guardspec::predict::Scheme;
use guardspec::sim::{simulate_program, MachineConfig};

fn main() {
    // A 600-iteration loop whose branch is taken for the first 40%,
    // alternates for 20%, and is not taken for the last 40% — the paper's
    // Section 4 running example, as executable code.
    let mut fb = FuncBuilder::new("phased");
    fb.block("entry");
    fb.li(r(1), 0);
    fb.li(r(9), 600);
    fb.block("head");
    fb.slti(r(2), r(1), 240);
    fb.bne(r(2), r(0), "taken"); // the interesting branch
    fb.block("mid");
    fb.slti(r(3), r(1), 360);
    fb.beq(r(3), r(0), "fall");
    fb.block("toggle");
    fb.andi(r(4), r(1), 1);
    fb.beq(r(4), r(0), "fall");
    fb.block("taken");
    fb.addi(r(5), r(5), 1);
    fb.jump("latch");
    fb.block("fall");
    fb.addi(r(6), r(6), 1);
    fb.block("latch");
    fb.addi(r(1), r(1), 1);
    fb.bne(r(1), r(9), "head");
    fb.block("done");
    fb.sw(r(5), r(0), 1);
    fb.sw(r(6), r(0), 2);
    fb.halt();
    let program = single_func_program(fb);

    // 1. Profile: collect per-branch outcome bit vectors.
    let (profile, exec) = profile_program(&program).expect("profile run");
    println!("profiled {} dynamic instructions", exec.summary.retired);
    for (site, bp) in profile.branches() {
        println!(
            "  branch at block {:>2}: executed {:>4}, taken rate {:.2}",
            site.block.0,
            bp.executed,
            bp.taken_rate()
        );
    }

    // 2. Transform: the Figure-6 driver picks likely/if-convert/split.
    let mut tuned = program.clone();
    let report = transform_program(&mut tuned, &profile, &DriverOptions::proposed());
    println!(
        "\ntransforms: {} likelies, {} if-conversions, {} splits ({} split likelies)",
        report.likelies, report.ifconversions, report.splits, report.split_likelies
    );

    // 3. Simulate under the three schemes.
    let cfg = MachineConfig::r10000();
    let (base, _) = simulate_program(&program, Scheme::TwoBit, &cfg).expect("sim");
    let (prop, _) = simulate_program(&tuned, Scheme::Proposed, &cfg).expect("sim");
    let (perf, _) = simulate_program(&program, Scheme::Perfect, &cfg).expect("sim");
    println!(
        "\n{:<12} {:>8} {:>8} {:>10}",
        "scheme", "cycles", "IPC", "mispredicts"
    );
    for (name, s) in [
        ("2-bit BP", &base),
        ("proposed", &prop),
        ("perfect BP", &perf),
    ] {
        println!(
            "{:<12} {:>8} {:>8.3} {:>10}",
            name,
            s.cycles,
            s.ipc(),
            s.mispredicts
        );
    }
    assert!(
        prop.ipc() >= base.ipc(),
        "the proposed scheme should not lose"
    );
}
