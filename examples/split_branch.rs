//! Figure 7 of the paper: split-branch instrumentation, printed before and
//! after, with the misprediction improvement measured in the simulator.
//!
//! Run with: `cargo run --release --example split_branch`

use guardspec::analysis::{Cfg, DomTree, LoopForest};
use guardspec::core::renamepool::RenamePool;
use guardspec::core::splitbranch::{split_branches, SplitPlan, SplitSpec};
use guardspec::core::{classify, BranchBehavior, FeedbackParams};
use guardspec::interp::profile::profile_program;
use guardspec::ir::builder::*;
use guardspec::ir::print::func_to_string;
use guardspec::ir::reg::r;
use guardspec::ir::{FuncId, InsnRef};
use guardspec::predict::Scheme;
use guardspec::sim::{simulate_program, MachineConfig};

fn main() {
    // An alternating branch (TFTF…) — the 2-bit predictor's pathological
    // case, and the paper's "algebraic counter" showcase: membership is
    // `(i & 1) == k`, so two predicated branch-likelies capture every
    // iteration and the 2-bit residual almost never executes.
    let mut fb = FuncBuilder::new("alternating");
    fb.block("entry");
    fb.li(r(1), 0);
    fb.li(r(9), 500);
    fb.block("head");
    fb.andi(r(2), r(1), 1);
    fb.bne(r(2), r(0), "B3");
    fb.block("B2");
    fb.addi(r(6), r(6), 1);
    fb.jump("B4");
    fb.block("B3");
    fb.addi(r(5), r(5), 1);
    fb.block("B4");
    fb.addi(r(1), r(1), 1);
    fb.bne(r(1), r(9), "head");
    fb.block("done");
    fb.sw(r(5), r(0), 1);
    fb.sw(r(6), r(0), 2);
    fb.halt();
    let base = single_func_program(fb);
    println!("=== before ===\n{}", func_to_string(&base.funcs[0], None));

    // Profile + classify the branch.
    let (profile, _) = profile_program(&base).expect("profile");
    let f = base.func(FuncId(0));
    let bb = f.block_by_label("head").unwrap();
    let site = InsnRef {
        func: FuncId(0),
        block: bb,
        idx: f.block(bb).insns.len() as u32 - 1,
    };
    let bp = profile.branch(site).expect("profiled");
    let params = FeedbackParams::default();
    let plan = match classify(&bp.outcomes, &params) {
        BranchBehavior::Periodic { period, pattern } => {
            println!("branch classified Periodic (period {period}, pattern {pattern:?})\n");
            SplitPlan::Periodic { period, pattern }
        }
        BranchBehavior::Phased { segments } => {
            println!("branch classified Phased: {segments:?}\n");
            SplitPlan::Phased { segments }
        }
        other => panic!("unexpected classification {other:?}"),
    };

    // Apply the split.
    let mut split = base.clone();
    {
        let f0 = split.func(FuncId(0));
        let cfg = Cfg::build(f0);
        let dom = DomTree::dominators(&cfg);
        let forest = LoopForest::build(f0, &cfg, &dom);
        let l = &forest.loops[0];
        let (header, body) = (l.header, l.body.clone());
        let f = split.func_mut(FuncId(0));
        let mut pool = RenamePool::for_function(f);
        let specs = vec![SplitSpec { block: bb, plan }];
        let (stats, _) =
            split_branches(f, header, &body, &specs, &mut pool, 0.15, 4).expect("split");
        println!(
            "=== after ({} likelies, {} instrumentation ops) ===\n{}",
            stats.likelies,
            stats.instrumentation_ops,
            func_to_string(&split.funcs[0], None)
        );
    }

    // Same results, fewer mispredictions.
    let cfg = MachineConfig::r10000();
    let (sb, rb) = simulate_program(&base, Scheme::TwoBit, &cfg).expect("sim");
    let (ss, rs) = simulate_program(&split, Scheme::Proposed, &cfg).expect("sim");
    assert_eq!(rb.machine.mem[1], rs.machine.mem[1]);
    assert_eq!(rb.machine.mem[2], rs.machine.mem[2]);
    println!("mispredicts: {} -> {}", sb.mispredicts, ss.mispredicts);
    println!("cycles:      {} -> {}", sb.cycles, ss.cycles);
    assert!(ss.mispredicts * 4 < sb.mispredicts);
    assert!(ss.cycles < sb.cycles);
}
