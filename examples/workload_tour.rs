//! Tour of the four synthetic benchmarks: run each through the full
//! profile → transform → simulate pipeline and print a compact report.
//!
//! Run with: `cargo run --release --example workload_tour`

use guardspec::core::{transform_program, DriverOptions};
use guardspec::interp::profile::profile_program;
use guardspec::predict::Scheme;
use guardspec::sim::{simulate_program, MachineConfig};
use guardspec::workloads::{all_workloads, Scale};

fn main() {
    let cfg = MachineConfig::r10000();
    println!(
        "{:<10} {:>10} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "workload", "dyn instr", "br %", "base IPC", "prop IPC", "perf IPC", "speedup"
    );
    for w in all_workloads(Scale::Small) {
        let (profile, _) = profile_program(&w.program).expect("profile");
        let mut tuned = w.program.clone();
        transform_program(&mut tuned, &profile, &DriverOptions::proposed());

        let (base, rb) = simulate_program(&w.program, Scheme::TwoBit, &cfg).expect("sim");
        let (prop, rp) = simulate_program(&tuned, Scheme::Proposed, &cfg).expect("sim");
        let (perf, _) = simulate_program(&w.program, Scheme::Perfect, &cfg).expect("sim");

        // Both versions must produce the expected answers.
        assert!(
            w.verify(&rb.machine.mem).is_empty(),
            "{} base wrong",
            w.name
        );
        assert!(
            w.verify(&rp.machine.mem).is_empty(),
            "{} tuned wrong",
            w.name
        );

        println!(
            "{:<10} {:>10} {:>6.1}% {:>9.3} {:>9.3} {:>9.3} {:>7.2}x",
            w.name,
            profile.retired,
            100.0 * profile.branch_fraction(),
            base.ipc(),
            prop.ipc(),
            perf.ipc(),
            base.cycles as f64 / prop.cycles as f64,
        );
    }
}
