//! Figure 1 of the paper, reproduced on real IR: (a) the original code,
//! (b)/(c) speculative execution with software renaming + forward
//! substitution, (d) guarded execution.
//!
//! Run with: `cargo run --release --example figure1_transforms`

use guardspec::analysis::{find_hammocks, Cfg, Liveness};
use guardspec::core::ifconvert::if_convert;
use guardspec::core::renamepool::RenamePool;
use guardspec::core::speculate::speculate_into_head;
use guardspec::ir::builder::*;
use guardspec::ir::print::func_to_string;
use guardspec::ir::reg::r;
use guardspec::ir::FuncId;

fn figure1a() -> guardspec::ir::Program {
    let mut fb = FuncBuilder::new("figure1");
    fb.block("entry");
    fb.li(r(1), 1);
    fb.li(r(2), 2);
    fb.li(r(3), 100);
    fb.li(r(4), 7);
    fb.li(r(5), 11);
    fb.li(r(6), 1000);
    fb.block("head");
    fb.beq(r(1), r(2), "L1");
    fb.block("fall");
    fb.subi(r(6), r(3), 1); // sub r6, r3, 1  — the Figure 1 example
    fb.add(r(8), r(6), r(4)); // add r8, r6, r4
    fb.jump("L2");
    fb.block("L1");
    fb.add(r(9), r(6), r(5)); // uses the OLD r6: speculation must rename
    fb.block("L2");
    fb.sw(r(6), r(0), 1);
    fb.sw(r(8), r(0), 2);
    fb.sw(r(9), r(0), 3);
    fb.halt();
    single_func_program(fb)
}

fn main() {
    let original = figure1a();
    println!(
        "=== Figure 1(a): original ===\n{}",
        func_to_string(&original.funcs[0], None)
    );

    // (b)/(c): speculate the fall-path prefix above the branch.
    let mut spec = original.clone();
    {
        let f = spec.func_mut(FuncId(0));
        let cfg = Cfg::build(f);
        let lv = Liveness::compute(f, &cfg);
        let head = f.block_by_label("head").unwrap();
        let fall = f.block_by_label("fall").unwrap();
        let taken = f.block_by_label("L1").unwrap();
        let live_other = *lv.live_in(taken);
        let mut pool = RenamePool::for_function(f);
        let (stats, _) = speculate_into_head(f, head, fall, &live_other, 4, false, &mut pool);
        println!(
            "=== Figure 1(b)/(c): after speculation ({} hoisted, {} renamed) ===\n{}",
            stats.hoisted,
            stats.renamed,
            func_to_string(&spec.funcs[0], None)
        );
    }

    // (d): guarded execution of the whole hammock.
    let mut guarded = original.clone();
    {
        let f = guarded.func_mut(FuncId(0));
        let cfg = Cfg::build(f);
        let h = find_hammocks(f, &cfg)[0];
        let mut pool = RenamePool::for_function(f);
        let stats = if_convert(f, &h, &mut pool, 16).expect("convertible");
        println!(
            "=== Figure 1(d): after guarded execution ({} ops guarded) ===\n{}",
            stats.guarded_ops,
            func_to_string(&guarded.funcs[0], None)
        );
    }

    // All three compute the same memory image.
    let m0 = guardspec::interp::run(&original).unwrap().machine;
    let m1 = guardspec::interp::run(&spec).unwrap().machine;
    let m2 = guardspec::interp::run(&guarded).unwrap().machine;
    assert_eq!(m0.mem_checksum(), m1.mem_checksum());
    assert_eq!(m0.mem_checksum(), m2.mem_checksum());
    println!("all three versions compute identical memory images ✓");
}
