#!/usr/bin/env bash
# Repo verification: build, test, regenerate a table end-to-end, and check
# formatting.  Run from the repository root:
#
#   ./scripts/verify.sh
#
# The table4 step exercises the full harness path (profile → transform →
# simulate, work-stealing pool, results cache, JSON artifact) and leaves
# its artifact at results/ci_table4.json.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== table4 end-to-end (test scale, JSON artifact) =="
cargo run --release -p guardspec-bench --bin table4 -- \
    --scale test --json results/ci_table4.json
test -s results/ci_table4.json

echo "== cargo fmt --check =="
cargo fmt --check

echo "verify.sh: all checks passed"
