#!/usr/bin/env bash
# Repo verification: build, test, regenerate a table end-to-end, and check
# formatting.  Run from the repository root:
#
#   ./scripts/verify.sh
#
# The table4 step exercises the full harness path (profile → transform →
# simulate, work-stealing pool, results cache, JSON artifact) and leaves
# its artifact at results/ci_table4.json.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== table4 end-to-end (test scale, JSON artifact) =="
cargo run --release -p guardspec-bench --bin table4 -- \
    --scale test --json results/ci_table4.json
test -s results/ci_table4.json

echo "== bench smoke (tiny scale: table3 streamed + no-stream, hotloop) =="
cargo run --release -p guardspec-bench --bin table3 -- --scale test > /tmp/ci_t3_stream.txt
cargo run --release -p guardspec-bench --bin table3 -- --scale test --no-stream > /tmp/ci_t3_nostream.txt
cmp /tmp/ci_t3_stream.txt /tmp/ci_t3_nostream.txt
cargo run --release -p guardspec-bench --bin hotloop -- --scale test > /dev/null
test -s results/BENCH_2.json

echo "== compiled vs interpreted engines (table3, byte-identical stdout) =="
# The compiled decoded-uop engine is the default; --no-compile selects the
# per-entry interpreted loop.  The stage cache is wiped between modes so
# both tables are really simulated, not replayed from cache.
ENGDIR=$(mktemp -d)
(cd "$ENGDIR" && "$OLDPWD/target/release/table3" --scale test > compiled.txt)
rm -rf "$ENGDIR"/results/cache
(cd "$ENGDIR" && "$OLDPWD/target/release/table3" --scale test --no-compile > interp.txt)
cmp "$ENGDIR"/compiled.txt "$ENGDIR"/interp.txt
rm -rf "$ENGDIR"

echo "== sampling smoke (table3 --sample: estimates present, CI > 0) =="
SMPDIR=$(mktemp -d)
(cd "$SMPDIR" && "$OLDPWD/target/release/table3" --scale test --sample \
    --sample-interval 1000 --sample-detail 50 --sample-warm 50 \
    --stable-json sampled.json > /dev/null)
grep -q '"sampling"' "$SMPDIR"/sampled.json
# Every cell sampled at this scale yields >= 2 windows, so no cell may
# report the exact-fallback CI of exactly zero.
if grep -q '"ipc_ci95": 0\.0[,}]' "$SMPDIR"/sampled.json; then
    echo "sampling smoke: found a zero-width CI" >&2
    exit 1
fi
rm -rf "$SMPDIR"

echo "== blockcomp (compiled >= 1.5x, sampled >= 5x on the sim stage) =="
# Asserts internally: engines byte-identical on stable artifacts, every
# sampled CI covers the exact IPC, and the speedup floors hold on the
# fastest rep per path.  Overwrites the PR evidence artifact.
cargo run --release -p guardspec-bench --bin blockcomp -- --scale small --jobs 1
test -s results/BENCH_8.json

echo "== trace cache cold/warm (table3 in a scratch dir, then tracefan) =="
# Cold run records binary trace blobs; the warm rerun in the same scratch
# dir must replay them (no interpretation) and print identical tables.
TCDIR=$(mktemp -d)
(cd "$TCDIR" && "$OLDPWD/target/release/table3" --scale test --jobs 1 > cold.txt)
# Blobs are sharded: results/cache/<2 hex>/trace-<digest>.bin
find "$TCDIR"/results/cache -name 'trace-*.bin' | grep -q .
(cd "$TCDIR" && "$OLDPWD/target/release/table3" --scale test --jobs 1 > warm.txt)
cmp "$TCDIR"/cold.txt "$TCDIR"/warm.txt
rm -rf "$TCDIR"
# tracefan asserts the structural claims itself: cold fan-out interprets
# once per distinct program, warm interprets zero times with every trace
# replayed from its blob, and the stable artifact is byte-identical
# across the before/cold/warm paths.
cargo run --release -p guardspec-bench --bin tracefan -- --scale test > /dev/null
test -s results/BENCH_10.json

echo "== observability (report bin, trace-out validation, decision schema) =="
# The report bin runs with cycle accounting forced on: it asserts per cell
# that the eight cycle buckets sum to stats.cycles and that the decision
# log carries a reason/action/behavior per visited branch (plus the cost
# comparison for every gated transform) — the schema check is internal.
OBSDIR=$(mktemp -d)
(cd "$OBSDIR" && "$OLDPWD/target/release/report" --scale test --jobs 2 \
    --trace-out trace.json > report.txt)
test -s "$OBSDIR"/report.txt
grep -q "mispredict_recovery" "$OBSDIR"/report.txt
# The emitted Chrome trace-event document must load: required fields
# present, spans strictly nested per thread.
"$OLDPWD/target/release/report" --check-trace "$OBSDIR"/trace.json
# Observability off must not perturb the science: table3 output with and
# without --observe is byte-identical on stdout.
(cd "$OBSDIR" && "$OLDPWD/target/release/table3" --scale test > t3_plain.txt \
    && "$OLDPWD/target/release/table3" --scale test --observe > t3_obs.txt)
cmp "$OBSDIR"/t3_plain.txt "$OBSDIR"/t3_obs.txt
rm -rf "$OBSDIR"

echo "== server smoke (2 sharded gsd + gsc sweep vs offline artifact) =="
# Two daemons each own half the sweep by cache-key range; gsc fans out,
# merges, and the merged artifact must be byte-identical to the offline
# bench binary's --stable-json output.  SIGTERM must drain and exit 0.
SRVDIR=$(mktemp -d)
target/release/table3 --scale small --stable-json "$SRVDIR/offline.json" > /dev/null
target/release/gsd --port 0 --cache-dir "$SRVDIR/cache0" --shard 0/2 > "$SRVDIR/gsd0.log" &
GSD0=$!
target/release/gsd --port 0 --cache-dir "$SRVDIR/cache1" --shard 1/2 > "$SRVDIR/gsd1.log" &
GSD1=$!
for _ in $(seq 1 100); do
    grep -q listening "$SRVDIR/gsd0.log" 2>/dev/null \
        && grep -q listening "$SRVDIR/gsd1.log" 2>/dev/null && break
    sleep 0.1
done
ADDR0=$(awk '{print $4}' "$SRVDIR/gsd0.log")
ADDR1=$(awk '{print $4}' "$SRVDIR/gsd1.log")
target/release/gsc --servers "$ADDR0,$ADDR1" --healthz
target/release/gsc --servers "$ADDR0,$ADDR1" --spec table3 --scale small \
    --out "$SRVDIR/served.json"
cmp "$SRVDIR/offline.json" "$SRVDIR/served.json"
# Warm replay through the service: still byte-identical.
target/release/gsc --servers "$ADDR0,$ADDR1" --spec table3 --scale small \
    --out "$SRVDIR/served_warm.json"
cmp "$SRVDIR/offline.json" "$SRVDIR/served_warm.json"
target/release/gsc --servers "$ADDR0" --metrics > /dev/null
kill -TERM "$GSD0" "$GSD1"
wait "$GSD0"
wait "$GSD1"
rm -rf "$SRVDIR"

echo "== service telemetry (traced stream + peer pull, Prometheus, logs) =="
# A warm peer W and a stone-cold daemon A peered with it, A slow-logging
# every request at debug level.  The traced streaming sweep must (a) keep
# the artifact byte-identical to the offline reference, (b) emit a Chrome
# trace (gsc validates it before writing) whose one trace id covers queue
# admission and the peer pull, and (c) keep gsd's stdout at exactly the
# one-line banner while structured JSON logs land on stderr.
TELDIR=$(mktemp -d)
target/release/table3 --scale test --stable-json "$TELDIR/offline.json" > /dev/null
target/release/gsd --port 0 --cache-dir "$TELDIR/cachew" > "$TELDIR/gsdw.log" &
GSDW=$!
for _ in $(seq 1 100); do
    grep -q listening "$TELDIR/gsdw.log" 2>/dev/null && break
    sleep 0.1
done
ADDRW=$(awk '{print $4}' "$TELDIR/gsdw.log")
target/release/gsc --servers "$ADDRW" --spec table3 --scale test \
    --out "$TELDIR/warm.json"
cmp "$TELDIR/offline.json" "$TELDIR/warm.json"
target/release/gsd --port 0 --cache-dir "$TELDIR/cachea" --peers "$ADDRW" \
    --slow-ms 0 --log-level debug \
    > "$TELDIR/gsda.log" 2> "$TELDIR/gsda.err" &
GSDA=$!
for _ in $(seq 1 100); do
    grep -q listening "$TELDIR/gsda.log" 2>/dev/null && break
    sleep 0.1
done
ADDRA=$(awk '{print $4}' "$TELDIR/gsda.log")
# Traced streaming run: W is warm, so A's worker pulls the artifact over
# /cache/<key> — the probe rides the request's trace id.
target/release/gsc --servers "$ADDRA" --spec table3 --scale test --stream \
    --trace-out "$TELDIR/trace_peer.json" --out "$TELDIR/traced.json"
cmp "$TELDIR/offline.json" "$TELDIR/traced.json"
grep -q 'peer.pull' "$TELDIR/trace_peer.json"
grep -q 'queue.wait' "$TELDIR/trace_peer.json"
# An ablation sweep misses the peer and executes locally: that trace must
# carry all five runner stages.
target/release/gsc --servers "$ADDRA" --spec ablation --scale test --stream \
    --trace-out "$TELDIR/trace_exec.json" > /dev/null
for stage in profile transform trace simulate collect; do
    grep -q "\"$stage\"" "$TELDIR/trace_exec.json"
done
# Prometheus scrape: gsc parses the exposition (monotone buckets, +Inf ==
# _count) before printing it; the latency histogram must have samples.
target/release/gsc --servers "$ADDRA" --metrics --prom > "$TELDIR/prom.txt"
grep -q 'series' "$TELDIR/prom.txt"
grep -Eq 'gsd_request_latency_seconds_count [1-9]' "$TELDIR/prom.txt"
# Telemetry off vs on: replay the same sweep untraced — still the same
# bytes.
target/release/gsc --servers "$ADDRA" --spec table3 --scale test \
    --out "$TELDIR/untraced.json"
cmp "$TELDIR/traced.json" "$TELDIR/untraced.json"
kill -TERM "$GSDA" "$GSDW"
wait "$GSDA"
wait "$GSDW"
# stdout discipline: the banner is the only stdout line even at debug.
test "$(wc -l < "$TELDIR/gsda.log")" -eq 1
grep -q '"event"' "$TELDIR/gsda.err"
rm -rf "$TELDIR"

echo "== loadgen keep-alive (BENCH_35.json: reuse + latency percentiles) =="
# Four passes against an embedded daemon — cold/close, warm/close,
# warm/keep-alive, warm/pipelined — overwriting the PR evidence artifact.
# The keep-alive and pipelined passes must actually reuse connections, and
# every pass reports histogram-derived p50/p95/p99/max latencies.
cargo run --release -p guardspec-bench --bin loadgen -- \
    --scale test --clients 4 --requests 8
test -s results/BENCH_35.json
grep -Eq '"server_reused": [1-9]' results/BENCH_35.json
grep -q '"p95_ms"' results/BENCH_35.json
grep -q '"max_ms"' results/BENCH_35.json

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== fuzz smoke (200 differential cases, fixed seed) =="
# Deterministic: fails (exit 1) on any transform-equivalence divergence.
cargo run --release -p guardspec-fuzz --bin fuzz -- --cases 200 --seed 7

echo "== criterion benches (test mode: one pass, no measurement loops) =="
cargo test --release -p guardspec-bench --benches -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "verify.sh: all checks passed"
