//! End-to-end integration: profile → transform → trace → simulate across
//! all crates, on all workloads, under every scheme and preset.

use guardspec::core::{transform_program, DriverOptions};
use guardspec::interp::profile::profile_program;
use guardspec::interp::run;
use guardspec::ir::validate::assert_valid;
use guardspec::predict::Scheme;
use guardspec::sim::{simulate_program, MachineConfig};
use guardspec::workloads::{all_workloads, Scale};

#[test]
fn every_workload_runs_and_verifies_under_every_preset() {
    for w in all_workloads(Scale::Test) {
        let (profile, _) = profile_program(&w.program).expect("profile");
        for opts in [
            DriverOptions::baseline(),
            DriverOptions::conventional(),
            DriverOptions::speculation_only(),
            DriverOptions::guarded_only(),
            DriverOptions::proposed(),
        ] {
            let mut p = w.program.clone();
            transform_program(&mut p, &profile, &opts);
            assert_valid(&p);
            let res = run(&p).expect("runs");
            let bad = w.verify(&res.machine.mem);
            assert!(bad.is_empty(), "{} under {opts:?}: {bad:?}", w.name);
        }
    }
}

#[test]
fn scheme_ordering_holds_on_all_workloads() {
    let cfg = MachineConfig::r10000();
    for w in all_workloads(Scale::Test) {
        let (profile, _) = profile_program(&w.program).expect("profile");
        let mut tuned = w.program.clone();
        transform_program(&mut tuned, &profile, &DriverOptions::proposed());

        let (base, _) = simulate_program(&w.program, Scheme::TwoBit, &cfg).unwrap();
        let (prop, _) = simulate_program(&tuned, Scheme::Proposed, &cfg).unwrap();
        let (perf, _) = simulate_program(&w.program, Scheme::Perfect, &cfg).unwrap();

        // The paper's headline shape: proposed between the 2-bit baseline
        // and perfect prediction (with a little slack for tiny inputs).
        assert!(
            prop.cycles as f64 <= base.cycles as f64 * 1.02,
            "{}: proposed {} vs base {}",
            w.name,
            prop.cycles,
            base.cycles
        );
        assert!(
            perf.cycles <= base.cycles,
            "{}: perfect {} vs base {}",
            w.name,
            perf.cycles,
            base.cycles
        );
        assert_eq!(perf.mispredicts, 0);
        assert_eq!(perf.indirect_stalls, 0);
    }
}

#[test]
fn transformed_programs_print_and_reparse() {
    // The textual format round-trips even for transformed programs with
    // predicated branch-likelies and guarded instructions.
    for w in all_workloads(Scale::Test) {
        let (profile, _) = profile_program(&w.program).expect("profile");
        let mut p = w.program.clone();
        transform_program(&mut p, &profile, &DriverOptions::proposed());
        let text = format!("{p}");
        let back = guardspec::ir::parse::parse_program(&text, None)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", w.name));
        assert_eq!(back.funcs, p.funcs, "{}", w.name);
    }
}

#[test]
fn annulled_never_counted_in_ipc_commits() {
    let cfg = MachineConfig::r10000();
    for w in all_workloads(Scale::Test) {
        let (profile, _) = profile_program(&w.program).expect("profile");
        let mut tuned = w.program.clone();
        transform_program(&mut tuned, &profile, &DriverOptions::proposed());
        let (stats, exec) = simulate_program(&tuned, Scheme::Proposed, &cfg).unwrap();
        assert_eq!(stats.committed_total, exec.summary.retired);
        assert_eq!(stats.annulled, exec.summary.annulled);
        assert_eq!(
            stats.committed,
            exec.summary.retired - exec.summary.annulled
        );
    }
}

#[test]
fn profiles_are_deterministic() {
    let w = &all_workloads(Scale::Test)[0];
    let (p1, _) = profile_program(&w.program).unwrap();
    let (p2, _) = profile_program(&w.program).unwrap();
    assert_eq!(p1.retired, p2.retired);
    assert_eq!(p1.site_counts, p2.site_counts);
    for (site, b1) in p1.branches() {
        let b2 = p2.branch(site).unwrap();
        assert_eq!(b1.taken, b2.taken);
        assert_eq!(b1.outcomes, b2.outcomes);
    }
}
