//! Property-based semantics preservation: random programs through every
//! transform must exhibit the same observable behavior — final memory image
//! *and* committed-store trace — as judged by the differential oracle's
//! equivalence checker ([`guardspec_fuzz::check_equivalence`]), so this test
//! and the fuzzer share one definition of "same behavior".

use guardspec::core::{transform_program, DriverOptions};
use guardspec::interp::profile::profile_program;
use guardspec::ir::builder::*;
use guardspec::ir::reg::r;
use guardspec::ir::validate::assert_valid;
use guardspec_fuzz::{behavior_of, check_equivalence};
use proptest::prelude::*;

/// Build a randomized two-diamond loop program from a parameter tuple.
/// The shape is fixed (so it stays a valid CFG); the *data* driving every
/// branch is random, which exercises classification and all transforms.
fn build_program(
    iters: i64,
    phase_split: i64,
    arm_ops: usize,
    mask: i64,
    seed: i64,
) -> guardspec::ir::Program {
    let mut fb = FuncBuilder::new("prop");
    fb.block("entry");
    fb.li(r(1), 0);
    fb.li(r(9), iters);
    fb.li(r(20), seed);
    fb.block("head");
    // Phase-dependent branch.
    fb.slti(r(2), r(1), phase_split);
    fb.bne(r(2), r(0), "p_t");
    fb.block("p_f");
    fb.addi(r(5), r(5), 1);
    fb.jump("mix");
    fb.block("p_t");
    fb.addi(r(6), r(6), 1);
    fb.block("mix");
    // Data-driven diamond with variable-length arms.
    fb.mul(r(20), r(20), r(20));
    fb.srl(r(3), r(20), 7);
    fb.andi(r(20), r(20), 0xFFFF);
    fb.andi(r(3), r(3), mask);
    fb.beq(r(3), r(0), "d_t");
    fb.block("d_f");
    for _ in 0..arm_ops {
        fb.addi(r(7), r(7), 2);
    }
    fb.jump("latch");
    fb.block("d_t");
    for _ in 0..arm_ops {
        fb.addi(r(7), r(7), 3);
    }
    fb.block("latch");
    fb.addi(r(1), r(1), 1);
    fb.bne(r(1), r(9), "head");
    fb.block("done");
    fb.sw(r(5), r(0), 1);
    fb.sw(r(6), r(0), 2);
    fb.sw(r(7), r(0), 3);
    fb.halt();
    single_func_program(fb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_presets_preserve_semantics(
        iters in 8i64..200,
        split_frac in 0i64..100,
        arm_ops in 1usize..6,
        mask in prop::sample::select(vec![0i64, 1, 3, 7]),
        seed in 3i64..1000,
    ) {
        let phase_split = iters * split_frac / 100;
        let prog = build_program(iters, phase_split, arm_ops, mask, seed);
        assert_valid(&prog);
        let base = behavior_of(&prog).unwrap();
        let (profile, _) = profile_program(&prog).unwrap();
        for (name, opts) in [
            ("conventional", DriverOptions::conventional()),
            ("speculation_only", DriverOptions::speculation_only()),
            ("guarded_only", DriverOptions::guarded_only()),
            ("proposed", DriverOptions::proposed()),
        ] {
            let mut p = prog.clone();
            transform_program(&mut p, &profile, &opts);
            assert_valid(&p);
            // Oracle equivalence: final memory AND committed-store trace.
            let got = behavior_of(&p).unwrap();
            if let Err(detail) = check_equivalence(&base, &got) {
                prop_assert!(
                    false,
                    "[{}] {} (iters={}, split={}, arms={}, mask={}, seed={})",
                    name, detail, iters, phase_split, arm_ops, mask, seed
                );
            }
        }
    }

    #[test]
    fn transforms_with_stale_profiles_stay_correct(
        iters in 8i64..120,
        profile_iters in 8i64..120,
        seed in 3i64..500,
    ) {
        // Profile one trip count, run another: decisions may be wrong but
        // semantics must hold (the split predicates degrade to mispredicts,
        // never to wrong answers).
        let profiled = build_program(profile_iters, profile_iters / 2, 2, 1, seed);
        let (profile, _) = profile_program(&profiled).unwrap();
        let mut p = build_program(iters, profile_iters / 2, 2, 1, seed);
        transform_program(&mut p, &profile, &DriverOptions::proposed());
        assert_valid(&p);
        let want = behavior_of(&build_program(iters, profile_iters / 2, 2, 1, seed)).unwrap();
        let got = behavior_of(&p).unwrap();
        if let Err(detail) = check_equivalence(&want, &got) {
            prop_assert!(false, "{} (iters={}, profile_iters={}, seed={})",
                detail, iters, profile_iters, seed);
        }
    }
}
